package topology

import (
	"testing"
	"testing/quick"

	"nocsim/internal/rng"
)

func TestCoordRoundTrip(t *testing.T) {
	top := New(Mesh, 7, 5)
	for n := 0; n < top.Nodes(); n++ {
		x, y := top.Coord(n)
		if top.Node(x, y) != n {
			t.Fatalf("Coord/Node round trip failed for %d", n)
		}
		if x < 0 || x >= 7 || y < 0 || y >= 5 {
			t.Fatalf("coordinate out of range for %d: (%d,%d)", n, x, y)
		}
	}
}

func TestMeshNeighbors(t *testing.T) {
	top := NewSquare(Mesh, 4)
	// Corner 0 has only East and South.
	if top.Neighbor(0, North) != -1 || top.Neighbor(0, West) != -1 {
		t.Error("corner node 0 should have no north/west neighbour")
	}
	if top.Neighbor(0, East) != 1 {
		t.Errorf("node 0 east = %d, want 1", top.Neighbor(0, East))
	}
	if top.Neighbor(0, South) != 4 {
		t.Errorf("node 0 south = %d, want 4", top.Neighbor(0, South))
	}
	// Interior node 5 = (1,1) has all four.
	for d := Port(0); d < NumDirs; d++ {
		if top.Neighbor(5, d) < 0 {
			t.Errorf("interior node 5 missing %v neighbour", d)
		}
	}
}

func TestTorusWrap(t *testing.T) {
	top := NewSquare(Torus, 4)
	if got := top.Neighbor(0, North); got != 12 {
		t.Errorf("torus node 0 north = %d, want 12", got)
	}
	if got := top.Neighbor(0, West); got != 3 {
		t.Errorf("torus node 0 west = %d, want 3", got)
	}
	for n := 0; n < top.Nodes(); n++ {
		for d := Port(0); d < NumDirs; d++ {
			if top.Neighbor(n, d) < 0 {
				t.Fatalf("torus node %d missing %v neighbour", n, d)
			}
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	for _, kind := range []Kind{Mesh, Torus} {
		top := New(kind, 6, 3)
		for n := 0; n < top.Nodes(); n++ {
			for d := Port(0); d < NumDirs; d++ {
				nb := top.Neighbor(n, d)
				if nb < 0 {
					continue
				}
				if back := top.Neighbor(nb, Opposite(d)); back != n {
					t.Fatalf("%v: neighbour symmetry broken at %d dir %v: %d -> back %d",
						kind, n, d, nb, back)
				}
			}
		}
	}
}

func TestOpposite(t *testing.T) {
	for d := Port(0); d < NumDirs; d++ {
		if Opposite(Opposite(d)) != d {
			t.Errorf("Opposite not involutive for %v", d)
		}
	}
	if Opposite(Local) != Invalid {
		t.Error("Opposite(Local) should be Invalid")
	}
}

func TestLinksCount(t *testing.T) {
	// 4x4 mesh: 2*4*3*2 = 48 unidirectional links.
	if got := NewSquare(Mesh, 4).Links(); got != 48 {
		t.Errorf("4x4 mesh links = %d, want 48", got)
	}
	// 4x4 torus: every node has 4 out-links.
	if got := NewSquare(Torus, 4).Links(); got != 64 {
		t.Errorf("4x4 torus links = %d, want 64", got)
	}
}

func TestDistanceMesh(t *testing.T) {
	top := NewSquare(Mesh, 8)
	if d := top.Distance(0, top.Node(7, 7)); d != 14 {
		t.Errorf("corner-to-corner distance = %d, want 14", d)
	}
	if d := top.Distance(3, 3); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
}

func TestDistanceTorusWraps(t *testing.T) {
	top := NewSquare(Torus, 8)
	if d := top.Distance(0, top.Node(7, 0)); d != 1 {
		t.Errorf("torus wrap distance = %d, want 1", d)
	}
	if d := top.Distance(0, top.Node(7, 7)); d != 2 {
		t.Errorf("torus corner distance = %d, want 2", d)
	}
}

// Property: XY routing from any node always reaches the destination in
// exactly Distance(src,dst) steps on a mesh.
func TestXYRouteReachesDestination(t *testing.T) {
	top := NewSquare(Mesh, 8)
	src := rng.New(99)
	f := func(a, b uint16) bool {
		s := int(a) % top.Nodes()
		d := int(b) % top.Nodes()
		at := s
		steps := 0
		for at != d {
			dir := top.XYRoute(at, d)
			if dir == Local {
				return false
			}
			next := top.Neighbor(at, dir)
			if next < 0 {
				return false
			}
			at = next
			steps++
			if steps > top.Nodes() {
				return false
			}
		}
		return steps == top.Distance(s, d)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: nil}
	_ = src
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestXYRouteXFirst(t *testing.T) {
	top := NewSquare(Mesh, 4)
	// From (0,0) to (2,3): must go East until x corrected.
	at := top.Node(0, 0)
	dst := top.Node(2, 3)
	if dir := top.XYRoute(at, dst); dir != East {
		t.Errorf("XY route first hop = %v, want E", dir)
	}
	// From (2,0) to (2,3): x equal, go South.
	if dir := top.XYRoute(top.Node(2, 0), dst); dir != South {
		t.Errorf("XY route y-phase hop = %v, want S", dir)
	}
	if dir := top.XYRoute(dst, dst); dir != Local {
		t.Errorf("XY route at destination = %v, want Local", dir)
	}
}

func TestXYRouteTorusTakesShortWrap(t *testing.T) {
	top := NewSquare(Torus, 8)
	// (0,0) -> (7,0): wrapping West is 1 hop vs 7 going East.
	if dir := top.XYRoute(top.Node(0, 0), top.Node(7, 0)); dir != West {
		t.Errorf("torus route = %v, want W", dir)
	}
	// Destination also reached in Distance steps.
	at, dst := top.Node(1, 1), top.Node(6, 7)
	steps := 0
	for at != dst {
		at = top.Neighbor(at, top.XYRoute(at, dst))
		steps++
	}
	if steps != top.Distance(top.Node(1, 1), dst) {
		t.Errorf("torus XY path length %d, want %d", steps, top.Distance(top.Node(1, 1), dst))
	}
}

// Property: every direction returned by ProductiveDirs strictly reduces
// distance, and XYRoute's choice is always among them.
func TestProductiveDirs(t *testing.T) {
	for _, kind := range []Kind{Mesh, Torus} {
		top := New(kind, 6, 6)
		r := rng.New(5)
		for trial := 0; trial < 2000; trial++ {
			a := r.Intn(top.Nodes())
			b := r.Intn(top.Nodes())
			if a == b {
				continue
			}
			dirs := top.ProductiveDirs(nil, a, b)
			if len(dirs) == 0 {
				t.Fatalf("%v: no productive dirs from %d to %d", kind, a, b)
			}
			found := false
			xy := top.XYRoute(a, b)
			for _, d := range dirs {
				nb := top.Neighbor(a, d)
				if top.Distance(nb, b) != top.Distance(a, b)-1 {
					t.Fatalf("%v: dir %v from %d to %d not productive", kind, d, a, b)
				}
				if d == xy {
					found = true
				}
			}
			if !found {
				t.Fatalf("%v: XY choice %v not in productive set %v (from %d to %d)",
					kind, xy, dirs, a, b)
			}
		}
	}
}

func TestPortString(t *testing.T) {
	want := map[Port]string{North: "N", East: "E", South: "S", West: "W", Local: "L", Invalid: "?"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Port(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0,5) did not panic")
		}
	}()
	New(Mesh, 0, 5)
}

// TestRouteTablesMatchComputation cross-checks the precomputed table
// path against the closed-form path for every (at, dst) pair: the
// tables are an optimisation, never a behaviour change.
func TestRouteTablesMatchComputation(t *testing.T) {
	for _, kind := range []Kind{Mesh, Torus} {
		for _, dims := range [][2]int{{4, 4}, {5, 3}, {8, 8}} {
			top := New(kind, dims[0], dims[1])
			if top.rt == nil {
				t.Fatalf("%v %dx%d: tables not built", kind, dims[0], dims[1])
			}
			plain := New(kind, dims[0], dims[1])
			plain.rt = nil // force the computed path
			n := top.Nodes()
			var tb, cb [NumDirs]Port
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if got, want := top.XYRoute(a, b), plain.XYRoute(a, b); got != want {
						t.Fatalf("%v %dx%d XYRoute(%d,%d) = %v, computed %v", kind, dims[0], dims[1], a, b, got, want)
					}
					if got, want := top.Distance(a, b), plain.Distance(a, b); got != want {
						t.Fatalf("%v %dx%d Distance(%d,%d) = %d, computed %d", kind, dims[0], dims[1], a, b, got, want)
					}
					tabl := top.ProductiveDirs(tb[:0], a, b)
					comp := plain.ProductiveDirs(cb[:0], a, b)
					if len(tabl) != len(comp) {
						t.Fatalf("%v %dx%d ProductiveDirs(%d,%d): table %v, computed %v", kind, dims[0], dims[1], a, b, tabl, comp)
					}
					for i := range tabl {
						if tabl[i] != comp[i] {
							t.Fatalf("%v %dx%d ProductiveDirs(%d,%d): table %v, computed %v", kind, dims[0], dims[1], a, b, tabl, comp)
						}
					}
				}
			}
		}
	}
}

// TestTableGating pins the table-building policy: true 2-D grids whose
// displacement table fits the byte budget get tables; 1-D lines and
// grids beyond the budget do not — and the fallback still answers
// queries.
func TestTableGating(t *testing.T) {
	// The paper's headline configurations are all comfortably inside
	// the budget under displacement indexing: 32x32 costs 63·63 bytes
	// (a per-pair table needed 1 MiB), 64x64 costs 127·127.
	top32 := New(Mesh, 32, 32)
	if !top32.RouteTableInUse() {
		t.Error("32x32 should have tables")
	}
	if got := top32.RouteTableBytes(); got != 63*63 {
		t.Errorf("32x32 RouteTableBytes = %d, want %d", got, 63*63)
	}
	if top := New(Mesh, 64, 64); !top.RouteTableInUse() {
		t.Error("64x64 (16 KiB displacement table) should have tables")
	}
	line := New(Mesh, 256, 1)
	if line.RouteTableInUse() {
		t.Error("1-D line should not build tables")
	}
	if got := line.RouteTableBytes(); got != 0 {
		t.Errorf("fallback RouteTableBytes = %d, want 0", got)
	}
	if d := line.Distance(0, 255); d != 255 {
		t.Errorf("line fallback Distance = %d, want 255", d)
	}
	if p := line.XYRoute(0, 7); p != East {
		t.Errorf("line fallback XYRoute = %v, want East", p)
	}
	if m := line.ProductiveMask(3, 9); m != 1<<uint(East) {
		t.Errorf("line fallback ProductiveMask = %b, want East only", m)
	}
	// The budget boundary: (2·512-1)² = 1,046,529 B fits the 1 MiB
	// budget, (2·513-1)² does not.
	if top := New(Mesh, 512, 512); !top.RouteTableInUse() {
		t.Error("512x512 (just under the budget) should have tables")
	}
	big := New(Mesh, 513, 513)
	if big.RouteTableInUse() {
		t.Error("513x513 (over the budget) should not build tables")
	}
	if d := big.Distance(0, big.Nodes()-1); d != 512+512 {
		t.Errorf("big fallback Distance = %d, want %d", d, 512+512)
	}
}

// TestProductiveMaskMatchesDirs checks the mask and slice forms agree
// on both the table and computed paths.
func TestProductiveMaskMatchesDirs(t *testing.T) {
	for _, top := range []*Topology{New(Mesh, 6, 6), New(Torus, 6, 6), New(Mesh, 300, 1)} {
		n := top.Nodes()
		var buf [NumDirs]Port
		for a := 0; a < n; a += 7 {
			for b := 0; b < n; b += 5 {
				var fromMask uint8
				for _, d := range top.ProductiveDirs(buf[:0], a, b) {
					fromMask |= 1 << uint(d)
				}
				if m := top.ProductiveMask(a, b); m != fromMask {
					t.Fatalf("ProductiveMask(%d,%d) = %b, dirs give %b", a, b, m, fromMask)
				}
			}
		}
	}
}
