// Package topology models the regular on-chip network topologies used by
// the paper: the 2D mesh (the baseline throughout) and the 2D torus
// (evaluated in §6.3 as yielding the same trends with ~10% higher
// throughput). It provides node/coordinate arithmetic, per-port neighbour
// lookup, hop distances, and XY dimension-order routing.
//
// Ports are numbered so that a router's output port p connects to the
// neighbour in direction p, and arrives there on input port Opposite(p).
// Port Local is the network-interface port used for injection/ejection.
//
// Routing queries sit on the fabrics' per-flit hot path, so New
// precomputes a flat per-(node, dst) table — the XY output port, the
// hop distance, and the productive-direction bitmask packed into one
// 4-byte entry — and XYRoute, Distance, ProductiveDirs and
// ProductiveMask become single array loads. The table costs O(N²)
// bytes and is built only for true 2-D grids whose table fits the
// cache budget (see tableWorthwhile); degenerate 1-D lines (the
// hierarchical ring harness placeholder) and larger topologies fall
// back to the closed-form computation, which stays the source of
// truth: the table is filled from it, so both paths are identical by
// construction. The closed-form path itself reads per-node coordinate
// caches (O(N) memory), so even table-less topologies answer queries
// without division.
package topology

import (
	"fmt"
	"math/bits"
	"unsafe"
)

// Port identifies one of a router's five ports.
type Port int8

// The four mesh directions plus the local network-interface port.
const (
	North Port = iota
	East
	South
	West
	Local

	// NumDirs is the number of inter-router directions (excludes Local).
	NumDirs = 4
	// NumPorts includes the local port.
	NumPorts = 5
)

// Invalid is returned for a port that does not exist (e.g. off the mesh
// edge).
const Invalid Port = -1

func (p Port) String() string {
	switch p {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	case Local:
		return "L"
	}
	return "?"
}

// Opposite returns the direction a flit leaving on p arrives on.
func Opposite(p Port) Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return Invalid
}

// Kind selects the topology family.
type Kind int

const (
	// Mesh is the 2D mesh used for all headline results.
	Mesh Kind = iota
	// Torus wraps both dimensions (§6.3 note).
	Torus
)

func (k Kind) String() string {
	if k == Torus {
		return "torus"
	}
	return "mesh"
}

// MaxTableNodes is the hard cap on the precomputed route table: beyond
// 4096 nodes (the paper's largest configuration) the O(N²) array would
// cost gigabytes. Below the cap a second, tighter gate applies — see
// tableBudgetBytes.
const MaxTableNodes = 4096

// tableBudgetBytes gates table building by measured benefit, not just
// memory safety: a route-table query is a random access into an N²×4 B
// array, so once the table outgrows the low cache levels it evicts the
// fabric's own working set and loses to the closed-form computation
// (measured ~0.75x at 32x32, vs ~1.7x *speedup* at 16x16 where the
// 256 KiB table stays resident). 1 MiB keeps every winning
// configuration and excludes every losing one on the cores we measured.
const tableBudgetBytes = 1 << 20

// Topology is a W×H grid of nodes, mesh or torus.
type Topology struct {
	kind   Kind
	width  int
	height int
	nodes  int
	// neighbors[node*NumDirs+dir] caches neighbour node IDs, -1 if none.
	neighbors []int32
	// cx/cy cache each node's coordinates. Coord sits under every
	// closed-form routing query, and the div/mod pair it replaces is the
	// single hottest arithmetic in the fallback path; the arrays are
	// O(N), so every size gets them.
	cx, cy []int16
	// rt is the flat per-(node, dst) route table, indexed at*nodes+dst;
	// nil when the topology is a 1-D line or exceeds MaxTableNodes (see
	// the package comment). The three route properties are packed into
	// one 4-byte entry so that a hot-path query for a pair — which
	// typically needs the XY port and the productive mask together —
	// touches a single cache line instead of three arrays.
	rt []routeEntry
}

// routeEntry packs every precomputed route property of one (at, dst)
// pair. dist is uint16: the longest minimal path on a <=4096-node grid
// is well under 65536 hops.
type routeEntry struct {
	xy   Port
	prod uint8
	dist uint16
}

// New constructs a width×height topology of the given kind. Width and
// height must be positive.
func New(kind Kind, width, height int) *Topology {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("topology: invalid size %dx%d", width, height))
	}
	if width > 1<<15 || height > 1<<15 {
		panic(fmt.Sprintf("topology: size %dx%d overflows the int16 coordinate cache", width, height))
	}
	t := &Topology{kind: kind, width: width, height: height, nodes: width * height}
	t.cx = make([]int16, t.nodes)
	t.cy = make([]int16, t.nodes)
	for n := 0; n < t.nodes; n++ {
		t.cx[n] = int16(n % width)
		t.cy[n] = int16(n / width)
	}
	t.neighbors = make([]int32, t.nodes*NumDirs)
	for n := 0; n < t.nodes; n++ {
		x, y := t.Coord(n)
		for d := Port(0); d < NumDirs; d++ {
			t.neighbors[n*NumDirs+int(d)] = int32(t.computeNeighbor(x, y, d))
		}
	}
	// 1-D lines only exist as the hierarchical ring harness placeholder,
	// where XY routing is never consulted; skip the quadratic tables.
	if t.tableWorthwhile() {
		t.buildTables()
	}
	return t
}

// tableWorthwhile reports whether New should spend O(N²) memory on the
// route table: true 2-D grids whose table fits both the hard cap and
// the cache budget.
func (t *Topology) tableWorthwhile() bool {
	if t.width <= 1 || t.height <= 1 || t.nodes > MaxTableNodes {
		return false
	}
	var e routeEntry
	return uintptr(t.nodes)*uintptr(t.nodes)*unsafe.Sizeof(e) <= tableBudgetBytes
}

// buildTables fills the flat route tables from the closed-form
// routines, making the table path identical to the computed path by
// construction.
func (t *Topology) buildTables() {
	n := t.nodes
	t.rt = make([]routeEntry, n*n)
	for at := 0; at < n; at++ {
		row := at * n
		for dst := 0; dst < n; dst++ {
			d := t.computeDistance(at, dst)
			e := routeEntry{xy: t.computeXYRoute(at, dst), dist: uint16(d)}
			if at != dst {
				for dir := Port(0); dir < NumDirs; dir++ {
					nb := t.Neighbor(at, dir)
					if nb >= 0 && t.computeDistance(nb, dst) < d {
						e.prod |= 1 << uint(dir)
					}
				}
			}
			t.rt[row+dst] = e
		}
	}
}

// NewSquare constructs a k×k topology.
func NewSquare(kind Kind, k int) *Topology { return New(kind, k, k) }

// Kind reports the topology family.
func (t *Topology) Kind() Kind { return t.kind }

// Width returns the number of columns.
func (t *Topology) Width() int { return t.width }

// Height returns the number of rows.
func (t *Topology) Height() int { return t.height }

// Nodes returns the total node count.
func (t *Topology) Nodes() int { return t.nodes }

// Links returns the number of unidirectional inter-router links.
func (t *Topology) Links() int {
	n := 0
	for node := 0; node < t.Nodes(); node++ {
		for d := Port(0); d < NumDirs; d++ {
			if t.Neighbor(node, d) >= 0 {
				n++
			}
		}
	}
	return n
}

// Node returns the node ID at (x, y).
func (t *Topology) Node(x, y int) int { return y*t.width + x }

// Coord returns the (x, y) coordinate of node n.
func (t *Topology) Coord(n int) (x, y int) { return int(t.cx[n]), int(t.cy[n]) }

func (t *Topology) computeNeighbor(x, y int, d Port) int {
	nx, ny := x, y
	switch d {
	case North:
		ny--
	case South:
		ny++
	case East:
		nx++
	case West:
		nx--
	default:
		return -1
	}
	if t.kind == Torus {
		nx = (nx + t.width) % t.width
		ny = (ny + t.height) % t.height
		// A 1-wide or 1-tall torus dimension would connect a node to
		// itself; treat that as no link, like a mesh edge.
		if nx == x && ny == y {
			return -1
		}
		return t.Node(nx, ny)
	}
	if nx < 0 || nx >= t.width || ny < 0 || ny >= t.height {
		return -1
	}
	return t.Node(nx, ny)
}

// Neighbor returns the node reached from n in direction d, or -1 if the
// port is off the edge of a mesh.
func (t *Topology) Neighbor(n int, d Port) int {
	return int(t.neighbors[n*NumDirs+int(d)])
}

// HasPort reports whether node n has a link in direction d.
func (t *Topology) HasPort(n int, d Port) bool { return t.Neighbor(n, d) >= 0 }

// Distance returns the minimal hop count between nodes a and b.
func (t *Topology) Distance(a, b int) int {
	if t.rt != nil {
		return int(t.rt[a*t.nodes+b].dist)
	}
	return t.computeDistance(a, b)
}

func (t *Topology) computeDistance(a, b int) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	dx := abs(ax - bx)
	dy := abs(ay - by)
	if t.kind == Torus {
		if w := t.width - dx; w < dx {
			dx = w
		}
		if h := t.height - dy; h < dy {
			dy = h
		}
	}
	return dx + dy
}

// XYRoute returns the productive output direction from node at toward
// dst under XY dimension-order routing: correct x first, then y. It
// returns Local when at == dst. On a torus the shorter wrap direction is
// taken.
func (t *Topology) XYRoute(at, dst int) Port {
	if t.rt != nil {
		return t.rt[at*t.nodes+dst].xy
	}
	return t.computeXYRoute(at, dst)
}

func (t *Topology) computeXYRoute(at, dst int) Port {
	if at == dst {
		return Local
	}
	ax, ay := t.Coord(at)
	dx, dy := t.Coord(dst)
	if ax != dx {
		return t.xDir(ax, dx)
	}
	return t.yDir(ay, dy)
}

func (t *Topology) xDir(ax, dx int) Port {
	if t.kind == Torus {
		right := (dx - ax + t.width) % t.width
		if right <= t.width-right {
			return East
		}
		return West
	}
	if dx > ax {
		return East
	}
	return West
}

func (t *Topology) yDir(ay, dy int) Port {
	if t.kind == Torus {
		down := (dy - ay + t.height) % t.height
		if down <= t.height-down {
			return South
		}
		return North
	}
	if dy > ay {
		return South
	}
	return North
}

// ProductiveDirs appends to buf every direction from at that reduces the
// distance to dst, and returns the extended slice. It is used by
// deflection arbitration to rank alternatives.
func (t *Topology) ProductiveDirs(buf []Port, at, dst int) []Port {
	for m := t.ProductiveMask(at, dst); m != 0; m &= m - 1 {
		buf = append(buf, Port(bits.TrailingZeros8(m)))
	}
	return buf
}

// ProductiveMask returns the productive directions from at toward dst
// as a bitmask (bit d set means direction Port(d) reduces the
// distance). The deflection fabrics' inner arbitration loops iterate
// this mask instead of materialising a slice.
func (t *Topology) ProductiveMask(at, dst int) uint8 {
	if t.rt != nil {
		return t.rt[at*t.nodes+dst].prod
	}
	if at == dst {
		return 0
	}
	d := t.computeDistance(at, dst)
	var m uint8
	for dir := Port(0); dir < NumDirs; dir++ {
		nb := t.Neighbor(at, dir)
		if nb >= 0 && t.computeDistance(nb, dst) < d {
			m |= 1 << uint(dir)
		}
	}
	return m
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
