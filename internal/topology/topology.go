// Package topology models the regular on-chip network topologies used by
// the paper: the 2D mesh (the baseline throughout) and the 2D torus
// (evaluated in §6.3 as yielding the same trends with ~10% higher
// throughput). It provides node/coordinate arithmetic, per-port neighbour
// lookup, hop distances, and XY dimension-order routing.
//
// Ports are numbered so that a router's output port p connects to the
// neighbour in direction p, and arrives there on input port Opposite(p).
// Port Local is the network-interface port used for injection/ejection.
//
// Routing queries sit on the fabrics' per-flit hot path, so New
// precomputes a route table — the XY output port and the
// productive-direction bitmask packed into one byte — and XYRoute,
// ProductiveDirs and ProductiveMask become array loads. Both route
// properties are translation-invariant: on a mesh they depend only on
// the signs of the coordinate displacement from at to dst, on a torus
// only on the displacement modulo each dimension. The table is
// therefore indexed by displacement, costing (2W-1)(2H-1) bytes rather
// than N² — 4 KiB for a 32x32 mesh instead of the 1 MiB a per-pair
// table needs — so queries stay in the first cache levels even on
// grids where a per-pair table would thrash. It is built only for true
// 2-D grids within the byte budget (see tableWorthwhile); degenerate
// 1-D lines (the hierarchical ring harness placeholder) and gigantic
// grids fall back to the closed-form computation, which stays the
// source of truth: the table is filled from it, so both paths are
// identical by construction. Distance is always closed-form — the
// coordinate arithmetic is a handful of subtractions off the O(N)
// per-node coordinate caches, too cheap to spend table bytes on (and a
// hop count does not fit the one-byte entry). RouteTableInUse reports
// which path a topology ended up on.
package topology

import (
	"fmt"
	"math/bits"
	"unsafe"
)

// Port identifies one of a router's five ports.
type Port int8

// The four mesh directions plus the local network-interface port.
const (
	North Port = iota
	East
	South
	West
	Local

	// NumDirs is the number of inter-router directions (excludes Local).
	NumDirs = 4
	// NumPorts includes the local port.
	NumPorts = 5
)

// Invalid is returned for a port that does not exist (e.g. off the mesh
// edge).
const Invalid Port = -1

func (p Port) String() string {
	switch p {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	case Local:
		return "L"
	}
	return "?"
}

// Opposite returns the direction a flit leaving on p arrives on.
func Opposite(p Port) Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return Invalid
}

// Kind selects the topology family.
type Kind int

const (
	// Mesh is the 2D mesh used for all headline results.
	Mesh Kind = iota
	// Torus wraps both dimensions (§6.3 note).
	Torus
)

func (k Kind) String() string {
	if k == Torus {
		return "torus"
	}
	return "mesh"
}

// tableBudgetBytes gates table building by measured benefit, not just
// memory safety: a route-table query is a random access, so once the
// table outgrows the low cache levels it evicts the fabric's own
// working set and loses to the closed-form computation. The original
// per-(node, dst) layout with 4-byte entries priced even a 32x32 mesh
// out at 4 MiB; packing the entry into one byte brought that to
// exactly the budget, and the displacement indexing collapses it to
// (2W-1)(2H-1) bytes — 4 KiB — so every grid up to 512x512 now takes
// the table path and the budget only excludes sizes far beyond the
// paper's configurations.
const tableBudgetBytes = 1 << 20

// Topology is a W×H grid of nodes, mesh or torus.
type Topology struct {
	kind   Kind
	width  int
	height int
	nodes  int
	// neighbors[node*NumDirs+dir] caches neighbour node IDs, -1 if none.
	neighbors []int32
	// pm[node] is the node's valid-port bitmask (bit d set iff the link
	// in direction d exists), so fabrics can track free output ports as
	// single-register bit operations instead of [NumDirs]bool scans.
	pm []uint8
	// cx/cy cache each node's coordinates. Coord sits under every
	// closed-form routing query, and the div/mod pair it replaces is the
	// single hottest arithmetic in the fallback path; the arrays are
	// O(N), so every size gets them.
	cx, cy []int16
	// rt is the displacement-indexed route table: the entry for a query
	// (at, dst) lives at rtIndex(at, dst), which keys on the coordinate
	// displacement (x(dst)-x(at), y(dst)-y(at)) — both route properties
	// are translation-invariant (see the package comment), so one entry
	// serves every pair with the same displacement. Nil when the
	// topology is a 1-D line or exceeds the table budget. Both
	// properties are packed into one byte so a hot-path query — which
	// typically needs the XY port and the productive mask together —
	// touches a single byte of a table small enough to live in L1.
	rt []routeEntry
	// rtStride is the rt row length, 2*height-1.
	rtStride int
	// rtDot[n] is cx[n]*rtStride + cy[n], and rtBase the constant
	// (width-1)*rtStride + (height-1), so rtIndex collapses to one
	// subtraction of two table loads: the displacement key
	// (dx+w-1)*stride + (dy+h-1) equals rtDot[dst]-rtDot[at]+rtBase.
	rtDot  []int32
	rtBase int32
}

// routeEntry packs the precomputed route properties of one (at, dst)
// pair into a single byte: the productive-direction mask in the low
// four bits and the XY output port (0..4; Local when at == dst) in the
// next three.
type routeEntry uint8

const (
	rtProdMask  = 0x0f
	rtPortShift = 4
)

// New constructs a width×height topology of the given kind. Width and
// height must be positive.
func New(kind Kind, width, height int) *Topology {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("topology: invalid size %dx%d", width, height))
	}
	if width > 1<<15 || height > 1<<15 {
		panic(fmt.Sprintf("topology: size %dx%d overflows the int16 coordinate cache", width, height))
	}
	t := &Topology{kind: kind, width: width, height: height, nodes: width * height}
	t.cx = make([]int16, t.nodes)
	t.cy = make([]int16, t.nodes)
	for n := 0; n < t.nodes; n++ {
		t.cx[n] = int16(n % width)
		t.cy[n] = int16(n / width)
	}
	t.neighbors = make([]int32, t.nodes*NumDirs)
	t.pm = make([]uint8, t.nodes)
	for n := 0; n < t.nodes; n++ {
		x, y := t.Coord(n)
		for d := Port(0); d < NumDirs; d++ {
			nb := t.computeNeighbor(x, y, d)
			t.neighbors[n*NumDirs+int(d)] = int32(nb)
			if nb >= 0 {
				t.pm[n] |= 1 << uint(d)
			}
		}
	}
	// 1-D lines only exist as the hierarchical ring harness placeholder,
	// where XY routing is never consulted; skip the quadratic tables.
	if t.tableWorthwhile() {
		t.buildTables()
	}
	return t
}

// tableWorthwhile reports whether New should build the
// displacement-indexed route table: true 2-D grids within the byte
// budget.
func (t *Topology) tableWorthwhile() bool {
	if t.width <= 1 || t.height <= 1 {
		return false
	}
	var e routeEntry
	return uintptr(2*t.width-1)*uintptr(2*t.height-1)*unsafe.Sizeof(e) <= tableBudgetBytes
}

// rtIndex maps a (at, dst) query to its displacement-table entry.
func (t *Topology) rtIndex(at, dst int) int {
	return int(t.rtDot[dst] - t.rtDot[at] + t.rtBase)
}

// buildTables fills the displacement-indexed route table from the
// closed-form routines, making the table path identical to the
// computed path by construction. Each displacement is computed on a
// representative pair whose source sits in the corner farthest along
// the displacement, so both endpoints are always in range; on a mesh
// every direction productive for the displacement exists at that
// representative (a productive direction always points inward), and on
// a torus every node has all four links, so the representative's
// answer is the answer for every pair with the displacement.
func (t *Topology) buildTables() {
	w, h := t.width, t.height
	t.rtStride = 2*h - 1
	t.rt = make([]routeEntry, (2*w-1)*t.rtStride)
	t.rtDot = make([]int32, t.nodes)
	for n := 0; n < t.nodes; n++ {
		t.rtDot[n] = int32(int(t.cx[n])*t.rtStride + int(t.cy[n]))
	}
	t.rtBase = int32((w-1)*t.rtStride + h - 1)
	for ddx := -(w - 1); ddx <= w-1; ddx++ {
		for ddy := -(h - 1); ddy <= h-1; ddy++ {
			ax, ay := max(0, -ddx), max(0, -ddy)
			at := t.Node(ax, ay)
			dst := t.Node(ax+ddx, ay+ddy)
			var prod uint8
			if at != dst {
				d := t.computeDistance(at, dst)
				for dir := Port(0); dir < NumDirs; dir++ {
					nb := t.Neighbor(at, dir)
					if nb >= 0 && t.computeDistance(nb, dst) < d {
						prod |= 1 << uint(dir)
					}
				}
			}
			t.rt[t.rtIndex(at, dst)] = routeEntry(uint8(t.computeXYRoute(at, dst))<<rtPortShift | prod)
		}
	}
}

// NewSquare constructs a k×k topology.
func NewSquare(kind Kind, k int) *Topology { return New(kind, k, k) }

// Kind reports the topology family.
func (t *Topology) Kind() Kind { return t.kind }

// Width returns the number of columns.
func (t *Topology) Width() int { return t.width }

// Height returns the number of rows.
func (t *Topology) Height() int { return t.height }

// Nodes returns the total node count.
func (t *Topology) Nodes() int { return t.nodes }

// Links returns the number of unidirectional inter-router links.
func (t *Topology) Links() int {
	n := 0
	for node := 0; node < t.Nodes(); node++ {
		for d := Port(0); d < NumDirs; d++ {
			if t.Neighbor(node, d) >= 0 {
				n++
			}
		}
	}
	return n
}

// Node returns the node ID at (x, y).
func (t *Topology) Node(x, y int) int { return y*t.width + x }

// Coord returns the (x, y) coordinate of node n.
func (t *Topology) Coord(n int) (x, y int) { return int(t.cx[n]), int(t.cy[n]) }

func (t *Topology) computeNeighbor(x, y int, d Port) int {
	nx, ny := x, y
	switch d {
	case North:
		ny--
	case South:
		ny++
	case East:
		nx++
	case West:
		nx--
	default:
		return -1
	}
	if t.kind == Torus {
		nx = (nx + t.width) % t.width
		ny = (ny + t.height) % t.height
		// A 1-wide or 1-tall torus dimension would connect a node to
		// itself; treat that as no link, like a mesh edge.
		if nx == x && ny == y {
			return -1
		}
		return t.Node(nx, ny)
	}
	if nx < 0 || nx >= t.width || ny < 0 || ny >= t.height {
		return -1
	}
	return t.Node(nx, ny)
}

// Neighbor returns the node reached from n in direction d, or -1 if the
// port is off the edge of a mesh.
func (t *Topology) Neighbor(n int, d Port) int {
	return int(t.neighbors[n*NumDirs+int(d)])
}

// HasPort reports whether node n has a link in direction d.
func (t *Topology) HasPort(n int, d Port) bool { return t.Neighbor(n, d) >= 0 }

// PortMask returns node n's valid inter-router ports as a bitmask (bit
// d set iff HasPort(n, Port(d))).
func (t *Topology) PortMask(n int) uint8 { return t.pm[n] }

// RouteEntry answers the two per-flit routing queries together: the XY
// output port and the productive-direction mask from at toward dst. On
// the table path this is one byte load off the L1-resident
// displacement table — the fabrics' arbitration needs both properties
// for every flit every cycle, so fusing the queries halves the
// hot-path lookup traffic.
func (t *Topology) RouteEntry(at, dst int) (xy Port, productive uint8) {
	if t.rt != nil {
		e := t.rt[t.rtIndex(at, dst)]
		return Port(e >> rtPortShift), uint8(e) & rtProdMask
	}
	return t.computeXYRoute(at, dst), t.ProductiveMask(at, dst)
}

// RouteEntryFast is RouteEntry without the closed-form fallback: one
// packed-table load, small enough to inline into fabric arbitration
// loops. Callers must have checked RouteTableInUse once up front.
func (t *Topology) RouteEntryFast(at, dst int) (xy Port, productive uint8) {
	e := t.rt[int(t.rtDot[dst]-t.rtDot[at]+t.rtBase)]
	return Port(e >> rtPortShift), uint8(e) & rtProdMask
}

// RouteTableInUse reports whether routing queries are served by the
// precomputed packed table (true) or by the closed-form fallback
// (false): 1-D lines and topologies whose table would exceed the
// budget gates. Both paths answer identically by construction; the
// accessor exists so tests and capacity planning can see which side of
// the budget a configuration landed on.
func (t *Topology) RouteTableInUse() bool { return t.rt != nil }

// RouteTableBytes returns the memory the packed route table occupies,
// or 0 when the closed-form fallback is in use.
func (t *Topology) RouteTableBytes() int {
	return len(t.rt) * int(unsafe.Sizeof(routeEntry(0)))
}

// Distance returns the minimal hop count between nodes a and b. It is
// always computed from the coordinate caches: a hop count does not fit
// the packed one-byte table entry, and the arithmetic is cheap enough
// that the table never beat it.
func (t *Topology) Distance(a, b int) int {
	return t.computeDistance(a, b)
}

func (t *Topology) computeDistance(a, b int) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	dx := abs(ax - bx)
	dy := abs(ay - by)
	if t.kind == Torus {
		if w := t.width - dx; w < dx {
			dx = w
		}
		if h := t.height - dy; h < dy {
			dy = h
		}
	}
	return dx + dy
}

// XYRoute returns the productive output direction from node at toward
// dst under XY dimension-order routing: correct x first, then y. It
// returns Local when at == dst. On a torus the shorter wrap direction is
// taken.
func (t *Topology) XYRoute(at, dst int) Port {
	if t.rt != nil {
		return Port(t.rt[t.rtIndex(at, dst)] >> rtPortShift)
	}
	return t.computeXYRoute(at, dst)
}

func (t *Topology) computeXYRoute(at, dst int) Port {
	if at == dst {
		return Local
	}
	ax, ay := t.Coord(at)
	dx, dy := t.Coord(dst)
	if ax != dx {
		return t.xDir(ax, dx)
	}
	return t.yDir(ay, dy)
}

func (t *Topology) xDir(ax, dx int) Port {
	if t.kind == Torus {
		right := (dx - ax + t.width) % t.width
		if right <= t.width-right {
			return East
		}
		return West
	}
	if dx > ax {
		return East
	}
	return West
}

func (t *Topology) yDir(ay, dy int) Port {
	if t.kind == Torus {
		down := (dy - ay + t.height) % t.height
		if down <= t.height-down {
			return South
		}
		return North
	}
	if dy > ay {
		return South
	}
	return North
}

// ProductiveDirs appends to buf every direction from at that reduces the
// distance to dst, and returns the extended slice. It is used by
// deflection arbitration to rank alternatives.
func (t *Topology) ProductiveDirs(buf []Port, at, dst int) []Port {
	for m := t.ProductiveMask(at, dst); m != 0; m &= m - 1 {
		buf = append(buf, Port(bits.TrailingZeros8(m)))
	}
	return buf
}

// ProductiveMask returns the productive directions from at toward dst
// as a bitmask (bit d set means direction Port(d) reduces the
// distance). The deflection fabrics' inner arbitration loops iterate
// this mask instead of materialising a slice.
func (t *Topology) ProductiveMask(at, dst int) uint8 {
	if t.rt != nil {
		return uint8(t.rt[t.rtIndex(at, dst)]) & rtProdMask
	}
	if at == dst {
		return 0
	}
	d := t.computeDistance(at, dst)
	var m uint8
	for dir := Port(0); dir < NumDirs; dir++ {
		nb := t.Neighbor(at, dir)
		if nb >= 0 && t.computeDistance(nb, dst) < d {
			m |= 1 << uint(dir)
		}
	}
	return m
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
