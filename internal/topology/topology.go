// Package topology models the regular on-chip network topologies used by
// the paper: the 2D mesh (the baseline throughout) and the 2D torus
// (evaluated in §6.3 as yielding the same trends with ~10% higher
// throughput). It provides node/coordinate arithmetic, per-port neighbour
// lookup, hop distances, and XY dimension-order routing.
//
// Ports are numbered so that a router's output port p connects to the
// neighbour in direction p, and arrives there on input port Opposite(p).
// Port Local is the network-interface port used for injection/ejection.
package topology

import "fmt"

// Port identifies one of a router's five ports.
type Port int8

// The four mesh directions plus the local network-interface port.
const (
	North Port = iota
	East
	South
	West
	Local

	// NumDirs is the number of inter-router directions (excludes Local).
	NumDirs = 4
	// NumPorts includes the local port.
	NumPorts = 5
)

// Invalid is returned for a port that does not exist (e.g. off the mesh
// edge).
const Invalid Port = -1

func (p Port) String() string {
	switch p {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	case Local:
		return "L"
	}
	return "?"
}

// Opposite returns the direction a flit leaving on p arrives on.
func Opposite(p Port) Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return Invalid
}

// Kind selects the topology family.
type Kind int

const (
	// Mesh is the 2D mesh used for all headline results.
	Mesh Kind = iota
	// Torus wraps both dimensions (§6.3 note).
	Torus
)

func (k Kind) String() string {
	if k == Torus {
		return "torus"
	}
	return "mesh"
}

// Topology is a W×H grid of nodes, mesh or torus.
type Topology struct {
	kind   Kind
	width  int
	height int
	// neighbors[node*NumDirs+dir] caches neighbour node IDs, -1 if none.
	neighbors []int32
}

// New constructs a width×height topology of the given kind. Width and
// height must be positive.
func New(kind Kind, width, height int) *Topology {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("topology: invalid size %dx%d", width, height))
	}
	t := &Topology{kind: kind, width: width, height: height}
	t.neighbors = make([]int32, width*height*NumDirs)
	for n := 0; n < width*height; n++ {
		x, y := t.Coord(n)
		for d := Port(0); d < NumDirs; d++ {
			t.neighbors[n*NumDirs+int(d)] = int32(t.computeNeighbor(x, y, d))
		}
	}
	return t
}

// NewSquare constructs a k×k topology.
func NewSquare(kind Kind, k int) *Topology { return New(kind, k, k) }

// Kind reports the topology family.
func (t *Topology) Kind() Kind { return t.kind }

// Width returns the number of columns.
func (t *Topology) Width() int { return t.width }

// Height returns the number of rows.
func (t *Topology) Height() int { return t.height }

// Nodes returns the total node count.
func (t *Topology) Nodes() int { return t.width * t.height }

// Links returns the number of unidirectional inter-router links.
func (t *Topology) Links() int {
	n := 0
	for node := 0; node < t.Nodes(); node++ {
		for d := Port(0); d < NumDirs; d++ {
			if t.Neighbor(node, d) >= 0 {
				n++
			}
		}
	}
	return n
}

// Node returns the node ID at (x, y).
func (t *Topology) Node(x, y int) int { return y*t.width + x }

// Coord returns the (x, y) coordinate of node n.
func (t *Topology) Coord(n int) (x, y int) { return n % t.width, n / t.width }

func (t *Topology) computeNeighbor(x, y int, d Port) int {
	nx, ny := x, y
	switch d {
	case North:
		ny--
	case South:
		ny++
	case East:
		nx++
	case West:
		nx--
	default:
		return -1
	}
	if t.kind == Torus {
		nx = (nx + t.width) % t.width
		ny = (ny + t.height) % t.height
		// A 1-wide or 1-tall torus dimension would connect a node to
		// itself; treat that as no link, like a mesh edge.
		if nx == x && ny == y {
			return -1
		}
		return t.Node(nx, ny)
	}
	if nx < 0 || nx >= t.width || ny < 0 || ny >= t.height {
		return -1
	}
	return t.Node(nx, ny)
}

// Neighbor returns the node reached from n in direction d, or -1 if the
// port is off the edge of a mesh.
func (t *Topology) Neighbor(n int, d Port) int {
	return int(t.neighbors[n*NumDirs+int(d)])
}

// HasPort reports whether node n has a link in direction d.
func (t *Topology) HasPort(n int, d Port) bool { return t.Neighbor(n, d) >= 0 }

// Distance returns the minimal hop count between nodes a and b.
func (t *Topology) Distance(a, b int) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	dx := abs(ax - bx)
	dy := abs(ay - by)
	if t.kind == Torus {
		if w := t.width - dx; w < dx {
			dx = w
		}
		if h := t.height - dy; h < dy {
			dy = h
		}
	}
	return dx + dy
}

// XYRoute returns the productive output direction from node at toward
// dst under XY dimension-order routing: correct x first, then y. It
// returns Local when at == dst. On a torus the shorter wrap direction is
// taken.
func (t *Topology) XYRoute(at, dst int) Port {
	if at == dst {
		return Local
	}
	ax, ay := t.Coord(at)
	dx, dy := t.Coord(dst)
	if ax != dx {
		return t.xDir(ax, dx)
	}
	return t.yDir(ay, dy)
}

func (t *Topology) xDir(ax, dx int) Port {
	if t.kind == Torus {
		right := (dx - ax + t.width) % t.width
		if right <= t.width-right {
			return East
		}
		return West
	}
	if dx > ax {
		return East
	}
	return West
}

func (t *Topology) yDir(ay, dy int) Port {
	if t.kind == Torus {
		down := (dy - ay + t.height) % t.height
		if down <= t.height-down {
			return South
		}
		return North
	}
	if dy > ay {
		return South
	}
	return North
}

// ProductiveDirs appends to buf every direction from at that reduces the
// distance to dst, and returns the extended slice. It is used by
// deflection arbitration to rank alternatives.
func (t *Topology) ProductiveDirs(buf []Port, at, dst int) []Port {
	if at == dst {
		return buf
	}
	d := t.Distance(at, dst)
	for dir := Port(0); dir < NumDirs; dir++ {
		nb := t.Neighbor(at, dir)
		if nb >= 0 && t.Distance(nb, dst) < d {
			buf = append(buf, dir)
		}
	}
	return buf
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
