package obs

import (
	"nocsim/internal/noc"
	"nocsim/internal/snap"
)

// Checkpoint codec for the observability collectors. Collector state is
// part of the simulation contract — a run extended from a checkpoint
// must export byte-identical time series, traces and heatmaps to a
// straight run — so samples, tracer rings and spatial grids are encoded
// in full. Sampling parameters (interval, trace modulus, ring capacity)
// are construction inputs and come from the restored configuration.
//
// The delta-baseline Stats blocks (Sample.Net, Sampler.prevNet) carry
// their Links field explicitly: unlike the fabric's own stats, these are
// copies owned by the collector, and Stats.Sub preserves Links, so the
// exports depend on it.

func init() {
	snap.Cover(Observer{}, snap.Coverage{
		Serialized: []string{"Sampler", "Tracer", "Spatial", "Epochs"},
	})
	snap.Cover(Options{}, snap.Coverage{
		Waived: map[string]string{
			"SampleInterval": "config: construction input",
			"TraceSample":    "config: construction input",
			"TraceBudget":    "config: construction input",
			"Spatial":        "config: construction input",
			"Epochs":         "config: construction input",
		},
	})
	snap.Cover(Meta{}, snap.Coverage{
		Waived: map[string]string{
			"Nodes":        "config: derived from the topology",
			"Width":        "config: derived from the topology",
			"Height":       "config: derived from the topology",
			"ActiveNodes":  "config: derived from the app assignment",
			"FlitsPerMiss": "config: derived from the packet sizes",
		},
	})
	snap.Cover(Probe{}, snap.Coverage{
		Waived: map[string]string{
			"Tracer":  "construction: capability view of the observer",
			"Spatial": "construction: capability view of the observer",
		},
	})
	snap.Cover(Sampler{}, snap.Coverage{
		Serialized: []string{"samples", "prevNet", "prevRetired", "prevMisses"},
		Waived: map[string]string{
			"Interval": "config: construction input",
			"meta":     "config: construction input",
			"sink":     "construction: streaming consumers re-attach after restore (SetSink replays)",
		},
	})
	snap.Cover(Sample{}, snap.Coverage{
		Serialized: []string{
			"Cycle", "IPC", "IPF", "ThrottleRate", "StarvationRate",
			"Utilization", "AvgNetLatency", "Net",
		},
	})
	snap.Cover(Tracer{}, snap.Coverage{
		Serialized: []string{"rings", "next", "lost"},
		Waived: map[string]string{
			"mod":     "config: construction input",
			"ringCap": "config: construction input",
		},
	})
	snap.Cover(Event{}, snap.Coverage{
		Serialized: []string{
			"Cycle", "Start", "Seq", "Node", "Src", "Dst",
			"Index", "PKind", "Kind",
		},
	})
	snap.Cover(EpochLedger{}, snap.Coverage{
		Serialized: []string{"records", "prevNet"},
		Waived: map[string]string{
			"meta": "config: construction input",
			"sink": "construction: streaming consumers re-attach after restore (SetSink replays)",
		},
	})
	snap.Cover(EpochRecord{}, snap.Coverage{
		Serialized: []string{
			"Epoch", "Cycle", "DecisionRan", "Congested", "MeanIPF",
			"ThrottledNodes", "ControlPackets", "Utilization",
			"DeflectionRate", "EjectionRate", "StarvationRate", "Nodes",
		},
	})
	snap.Cover(EpochNode{}, snap.Coverage{
		Serialized: []string{"Node", "IPF", "MPKI", "Sigma", "Rate"},
	})
	snap.Cover(Spatial{}, snap.Coverage{
		Serialized: []string{
			"link", "injected", "ejected", "deflected", "starved", "throttled",
		},
		Waived: map[string]string{
			"meta": "config: construction input",
		},
	})
}

const tagObs = 0x38

// snapshotStats encodes a collector-owned stats copy, including Links
// (which Stats.Snapshot leaves to the owning fabric).
func snapshotStats(w *snap.Writer, s *noc.Stats) {
	w.I64(int64(s.Links))
	s.Snapshot(w)
}

func restoreStats(r *snap.Reader, s *noc.Stats) {
	links := int(r.I64())
	s.Restore(r)
	s.Links = links
}

// Prime sets the sampler's delta baselines to the given cumulative
// totals, so the first window recorded after a warm-start fork covers
// only post-fork activity (the warmup prefix ran unobserved).
func (s *Sampler) Prime(net noc.Stats, retired, misses int64) {
	s.prevNet = net
	s.prevRetired = retired
	s.prevMisses = misses
}

func (s *Sampler) snapshot(w *snap.Writer) {
	w.U32(uint32(len(s.samples)))
	for i := range s.samples {
		sm := &s.samples[i]
		w.I64(sm.Cycle)
		w.F64(sm.IPC)
		w.F64(sm.IPF)
		w.F64(sm.ThrottleRate)
		w.F64(sm.StarvationRate)
		w.F64(sm.Utilization)
		w.F64(sm.AvgNetLatency)
		snapshotStats(w, &sm.Net)
	}
	snapshotStats(w, &s.prevNet)
	w.I64(s.prevRetired)
	w.I64(s.prevMisses)
}

func (s *Sampler) restore(r *snap.Reader) {
	n := int(r.U32())
	if r.Err() != nil {
		return
	}
	s.samples = s.samples[:0]
	for i := 0; i < n; i++ {
		var sm Sample
		sm.Cycle = r.I64()
		sm.IPC = r.F64()
		sm.IPF = r.F64()
		sm.ThrottleRate = r.F64()
		sm.StarvationRate = r.F64()
		sm.Utilization = r.F64()
		sm.AvgNetLatency = r.F64()
		restoreStats(r, &sm.Net)
		if r.Err() != nil {
			return
		}
		s.samples = append(s.samples, sm)
	}
	restoreStats(r, &s.prevNet)
	s.prevRetired = r.I64()
	s.prevMisses = r.I64()
}

func snapshotEvent(w *snap.Writer, ev *Event) {
	w.I64(ev.Cycle)
	w.I64(ev.Start)
	w.U64(ev.Seq)
	w.I32(ev.Node)
	w.I32(ev.Src)
	w.I32(ev.Dst)
	w.U8(ev.Index)
	w.U8(uint8(ev.PKind))
	w.U8(uint8(ev.Kind))
}

func restoreEvent(r *snap.Reader, ev *Event) {
	ev.Cycle = r.I64()
	ev.Start = r.I64()
	ev.Seq = r.U64()
	ev.Node = r.I32()
	ev.Src = r.I32()
	ev.Dst = r.I32()
	ev.Index = r.U8()
	ev.PKind = noc.Kind(r.U8())
	ev.Kind = EventKind(r.U8())
}

func (t *Tracer) snapshot(w *snap.Writer) {
	w.U32(uint32(len(t.rings)))
	for node := range t.rings {
		ring := t.rings[node]
		w.U32(uint32(len(ring)))
		for i := range ring {
			snapshotEvent(w, &ring[i])
		}
	}
	for _, nx := range t.next {
		w.I32(nx)
	}
	for _, l := range t.lost {
		w.I64(l)
	}
}

func (t *Tracer) restore(r *snap.Reader) {
	if n := int(r.U32()); n != len(t.rings) {
		r.Failf("tracer rings %d, want %d", n, len(t.rings))
		return
	}
	for node := range t.rings {
		n := int(r.U32())
		if n < 0 || n > t.ringCap {
			r.Failf("tracer ring %d overflow (%d > %d)", node, n, t.ringCap)
			return
		}
		if n == 0 {
			t.rings[node] = nil
			continue
		}
		ring := make([]Event, n, t.ringCap)
		for i := range ring {
			restoreEvent(r, &ring[i])
		}
		t.rings[node] = ring
	}
	for i := range t.next {
		t.next[i] = r.I32()
	}
	for i := range t.lost {
		t.lost[i] = r.I64()
	}
}

func snapshotGrid(w *snap.Writer, g []int64) {
	w.U32(uint32(len(g)))
	for _, v := range g {
		w.I64(v)
	}
}

func restoreGrid(r *snap.Reader, g []int64) {
	if n := int(r.U32()); n != len(g) {
		r.Failf("spatial grid %d, want %d", n, len(g))
		return
	}
	for i := range g {
		g[i] = r.I64()
	}
}

func (s *Spatial) snapshot(w *snap.Writer) {
	snapshotGrid(w, s.link)
	snapshotGrid(w, s.injected)
	snapshotGrid(w, s.ejected)
	snapshotGrid(w, s.deflected)
	snapshotGrid(w, s.starved)
	snapshotGrid(w, s.throttled)
}

func (s *Spatial) restore(r *snap.Reader) {
	restoreGrid(r, s.link)
	restoreGrid(r, s.injected)
	restoreGrid(r, s.ejected)
	restoreGrid(r, s.deflected)
	restoreGrid(r, s.starved)
	restoreGrid(r, s.throttled)
}

// Prime sets the ledger's delta baseline to the given cumulative
// counters, so the first epoch recorded after a warm-start fork
// derives its window rates from post-fork activity only.
func (l *EpochLedger) Prime(net noc.Stats) {
	l.prevNet = net
}

func (l *EpochLedger) snapshot(w *snap.Writer) {
	w.U32(uint32(len(l.records)))
	for i := range l.records {
		rec := &l.records[i]
		w.I64(rec.Epoch)
		w.I64(rec.Cycle)
		w.Bool(rec.DecisionRan)
		w.Bool(rec.Congested)
		w.F64(rec.MeanIPF)
		w.I32(int32(rec.ThrottledNodes))
		w.I32(int32(rec.ControlPackets))
		w.F64(rec.Utilization)
		w.F64(rec.DeflectionRate)
		w.F64(rec.EjectionRate)
		w.F64(rec.StarvationRate)
		w.U32(uint32(len(rec.Nodes)))
		for j := range rec.Nodes {
			nd := &rec.Nodes[j]
			w.I32(nd.Node)
			w.F64(nd.IPF)
			w.F64(nd.MPKI)
			w.F64(nd.Sigma)
			w.F64(nd.Rate)
		}
	}
	snapshotStats(w, &l.prevNet)
}

func (l *EpochLedger) restore(r *snap.Reader) {
	n := int(r.U32())
	if r.Err() != nil {
		return
	}
	l.records = l.records[:0]
	for i := 0; i < n; i++ {
		var rec EpochRecord
		rec.Epoch = r.I64()
		rec.Cycle = r.I64()
		rec.DecisionRan = r.Bool()
		rec.Congested = r.Bool()
		rec.MeanIPF = r.F64()
		rec.ThrottledNodes = int(r.I32())
		rec.ControlPackets = int(r.I32())
		rec.Utilization = r.F64()
		rec.DeflectionRate = r.F64()
		rec.EjectionRate = r.F64()
		rec.StarvationRate = r.F64()
		nn := int(r.U32())
		if r.Err() != nil {
			return
		}
		rec.Nodes = make([]EpochNode, nn)
		for j := range rec.Nodes {
			nd := &rec.Nodes[j]
			nd.Node = r.I32()
			nd.IPF = r.F64()
			nd.MPKI = r.F64()
			nd.Sigma = r.F64()
			nd.Rate = r.F64()
		}
		if r.Err() != nil {
			return
		}
		l.records = append(l.records, rec)
	}
	restoreStats(r, &l.prevNet)
}

// Snapshot encodes every enabled collector's full state.
func (o *Observer) Snapshot(w *snap.Writer) {
	w.Tag(tagObs)
	w.Bool(o.Sampler != nil)
	w.Bool(o.Tracer != nil)
	w.Bool(o.Spatial != nil)
	w.Bool(o.Epochs != nil)
	if o.Sampler != nil {
		o.Sampler.snapshot(w)
	}
	if o.Tracer != nil {
		o.Tracer.snapshot(w)
	}
	if o.Spatial != nil {
		o.Spatial.snapshot(w)
	}
	if o.Epochs != nil {
		o.Epochs.snapshot(w)
	}
}

// Restore overlays collector state captured by Snapshot onto an
// observer built from the same Options. A presence mismatch means the
// blob belongs to a different observability configuration.
func (o *Observer) Restore(r *snap.Reader) {
	r.Expect(tagObs)
	hasSampler := r.Bool()
	hasTracer := r.Bool()
	hasSpatial := r.Bool()
	hasEpochs := r.Bool()
	if r.Err() != nil {
		return
	}
	if hasSampler != (o.Sampler != nil) || hasTracer != (o.Tracer != nil) ||
		hasSpatial != (o.Spatial != nil) || hasEpochs != (o.Epochs != nil) {
		r.Failf("observer collectors (sampler=%t tracer=%t spatial=%t epochs=%t) do not match the configuration",
			hasSampler, hasTracer, hasSpatial, hasEpochs)
		return
	}
	if o.Sampler != nil {
		o.Sampler.restore(r)
	}
	if o.Tracer != nil {
		o.Tracer.restore(r)
	}
	if o.Spatial != nil {
		o.Spatial.restore(r)
	}
	if o.Epochs != nil {
		o.Epochs.restore(r)
	}
}
