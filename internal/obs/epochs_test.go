package obs_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nocsim/internal/obs"
	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/snap"
	"nocsim/internal/workload"
)

// TestGoldenEpochsJSONL pins the congestion-ledger export bytes for the
// small observed baseline run: one record per controller epoch, every
// input and output of the throttling decision. Any change to the delta
// computation, the decision plumbing, field ordering or float
// formatting shows up here. Re-baseline with -update in the same
// commit as an intentional change.
func TestGoldenEpochsJSONL(t *testing.T) {
	s := runObserved(t, 1)
	var buf bytes.Buffer
	if err := s.Obs().Epochs.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "epochs_golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("epoch ledger JSONL drifted from golden fixture (%d vs %d bytes); run with -update if intentional",
			buf.Len(), len(want))
	}
}

// runControlled executes the centrally controlled counterpart of the
// observed baseline, ledger only — the config whose throttling
// decisions the ledger exists to record.
func runControlled(t *testing.T, workers int) *sim.Sim {
	t.Helper()
	sc := testScale()
	cat, _ := workload.CategoryByName("HML")
	w := workload.Generate(cat, 16, sc.Seed)
	cfg := runner.Controlled(w, 4, 4, sc,
		runner.WithWorkers(workers),
		runner.WithObs(obs.Options{Epochs: true}),
	)
	s := sim.New(cfg)
	t.Cleanup(s.Close)
	s.Run(sc.Cycles)
	return s
}

// TestEpochLedgerContent checks the ledger's semantic shape on the
// centrally controlled baseline: one record per controller epoch at
// the epoch boundary cycle, per-node rows for every node, rates inside
// their physical ranges, and at least one epoch where the controller
// actually ran and decided.
func TestEpochLedgerContent(t *testing.T) {
	s := runControlled(t, 1)
	recs := s.Obs().Epochs.Records()
	sc := testScale()
	if want := int(sc.Cycles / sc.Epoch); len(recs) != want {
		t.Fatalf("got %d epoch records, want %d", len(recs), want)
	}
	ran := false
	for i, r := range recs {
		if r.Epoch != int64(i+1) {
			t.Errorf("record %d: epoch %d, want %d", i, r.Epoch, i+1)
		}
		if r.Cycle != int64(i+1)*sc.Epoch {
			t.Errorf("record %d: cycle %d, want %d", i, r.Cycle, int64(i+1)*sc.Epoch)
		}
		if len(r.Nodes) != 16 {
			t.Fatalf("record %d: %d node rows, want 16", i, len(r.Nodes))
		}
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"utilization", r.Utilization},
			{"deflection_rate", r.DeflectionRate},
			{"starvation_rate", r.StarvationRate},
		} {
			if f.v < 0 || f.v > 1 {
				t.Errorf("record %d: %s %g outside [0,1]", i, f.name, f.v)
			}
		}
		if r.DecisionRan {
			ran = true
			if r.MeanIPF <= 0 {
				t.Errorf("record %d: decision ran with mean IPF %g", i, r.MeanIPF)
			}
		}
		for _, nd := range r.Nodes {
			if nd.Rate < 0 || nd.Rate > 1 {
				t.Errorf("record %d node %d: throttle rate %g outside [0,1]", i, nd.Node, nd.Rate)
			}
		}
	}
	if !ran {
		t.Error("central controller never ran a decision over the whole run")
	}
}

// TestEpochLedgerCSVShape pins the CSV header and the one-row-per-
// epoch-per-node layout.
func TestEpochLedgerCSVShape(t *testing.T) {
	s := runObserved(t, 1)
	var buf bytes.Buffer
	if err := s.Obs().Epochs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	const header = "epoch,cycle,decision_ran,congested,mean_ipf,throttled_nodes,control_packets,utilization,deflection_rate,ejection_rate,starvation_rate,node,ipf,mpki,sigma,rate"
	if lines[0] != header {
		t.Fatalf("CSV header drifted:\n got %s\nwant %s", lines[0], header)
	}
	sc := testScale()
	if want := int(sc.Cycles/sc.Epoch)*16 + 1; len(lines) != want {
		t.Errorf("got %d CSV lines, want %d (header + epochs x nodes)", len(lines), want)
	}
}

// TestEpochLedgerWarmStartIdentity is the ledger's determinism
// contract across execution strategies: the exported bytes must be
// identical whether the run's warm prefix is recomputed inline
// (storeless fork), restored from a checkpoint store, or executed
// under different pool widths — and the manifest must say which
// checkpoint the run forked from.
func TestEpochLedgerWarmStartIdentity(t *testing.T) {
	scale := func() runner.Scale {
		sc := testScale()
		sc.Cycles = 4_000
		sc.Warmup = 2_000
		sc.Obs = obs.Options{SampleInterval: 1_000, Epochs: true}
		return sc
	}
	collect := func(parallel int, useStore bool) (ledger []byte, man obs.Manifest) {
		sc := scale()
		sc.Parallel = parallel
		dir := t.TempDir()
		sc.ObsDir = dir
		if useStore {
			st, err := snap.NewStore(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			sc.Snapshots = st
		}
		cat, _ := workload.CategoryByName("HML")
		w := workload.Generate(cat, 16, sc.Seed)
		cfg := runner.Controlled(w, 4, 4, sc)
		plan := runner.NewPlan(sc)
		plan.Add("ledger", cfg, sc.Cycles)
		plan.Execute()

		var b bytes.Buffer
		for _, name := range []string{"ledger.epochs.jsonl", "ledger.epochs.csv"} {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			b.Write(data)
		}
		raw, err := os.ReadFile(filepath.Join(dir, "ledger.manifest.json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(raw, &man); err != nil {
			t.Fatal(err)
		}
		return b.Bytes(), man
	}

	want, wantMan := collect(1, false)
	if len(want) == 0 {
		t.Fatal("empty ledger export")
	}
	if wantMan.WarmSource == "" || wantMan.WarmSource == "cold" {
		t.Fatalf("warm-forked run reports warm_source %q", wantMan.WarmSource)
	}
	if wantMan.WarmCycle != 2_000 {
		t.Fatalf("warm-forked run reports warm_cycle %d, want 2000", wantMan.WarmCycle)
	}
	for _, v := range []struct {
		name     string
		parallel int
		store    bool
	}{
		{"parallel=8 storeless", 8, false},
		{"parallel=1 store", 1, true},
		{"parallel=8 store", 8, true},
	} {
		got, gotMan := collect(v.parallel, v.store)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: ledger bytes differ from baseline (%d vs %d bytes)", v.name, len(got), len(want))
		}
		if gotMan.WarmSource != wantMan.WarmSource || gotMan.WarmCycle != wantMan.WarmCycle {
			t.Errorf("%s: provenance (%s, %d) differs from baseline (%s, %d)", v.name,
				gotMan.WarmSource, gotMan.WarmCycle, wantMan.WarmSource, wantMan.WarmCycle)
		}
		if gotMan.CountersHash != wantMan.CountersHash {
			t.Errorf("%s: counters hash differs", v.name)
		}
	}

	// A cold run of the same configuration without warmup reports cold
	// provenance.
	sc := scale()
	sc.Warmup = 0
	dir := t.TempDir()
	sc.ObsDir = dir
	cat, _ := workload.CategoryByName("HML")
	w := workload.Generate(cat, 16, sc.Seed)
	plan := runner.NewPlan(sc)
	plan.Add("cold", runner.Controlled(w, 4, 4, sc), sc.Cycles)
	plan.Execute()
	raw, err := os.ReadFile(filepath.Join(dir, "cold.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man obs.Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	if man.WarmSource != "cold" || man.WarmCycle != 0 {
		t.Errorf("cold run reports provenance (%s, %d), want (cold, 0)", man.WarmSource, man.WarmCycle)
	}
}
