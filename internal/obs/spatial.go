package obs

import (
	"io"
	"strconv"
)

// MaxPorts is the per-node output-port count of the link grid (the
// mesh/torus direction fan-out; ring fabrics have no 2D port geometry
// and leave the link grid zero).
const MaxPorts = 4

// Spatial accumulates where traffic flows and where it hurts: per-link
// traversal counts and per-node event grids, the raw material of the
// hotspot heatmaps. Each counter row is owned by the worker shard
// stepping that node (fabric shards partition nodes), so increments
// race with nothing and totals are shard-count invariant.
type Spatial struct {
	meta Meta

	// link[node*MaxPorts+dir] counts traversals of the output link
	// from node toward direction dir.
	link []int64
	// Per-node event counts.
	injected  []int64
	ejected   []int64
	deflected []int64
	starved   []int64
	throttled []int64
}

// NewSpatial returns zeroed grids for the given system shape.
func NewSpatial(m Meta) *Spatial {
	return &Spatial{
		meta:      m,
		link:      make([]int64, m.Nodes*MaxPorts),
		injected:  make([]int64, m.Nodes),
		ejected:   make([]int64, m.Nodes),
		deflected: make([]int64, m.Nodes),
		starved:   make([]int64, m.Nodes),
		throttled: make([]int64, m.Nodes),
	}
}

// AddLink counts one traversal of node's output link toward dir.
func (s *Spatial) AddLink(node, dir int) { s.link[node*MaxPorts+dir]++ }

// AddInject counts one flit injected at node.
func (s *Spatial) AddInject(node int) { s.injected[node]++ }

// AddEject counts one flit ejected at node.
func (s *Spatial) AddEject(node int) { s.ejected[node]++ }

// AddDeflect counts one deflection at node.
func (s *Spatial) AddDeflect(node int) { s.deflected[node]++ }

// AddStarve counts one starved node-cycle at node.
func (s *Spatial) AddStarve(node int) { s.starved[node]++ }

// AddThrottle counts one policy-blocked node-cycle at node.
func (s *Spatial) AddThrottle(node int) { s.throttled[node]++ }

// Link returns the traversal count of node's output link toward dir.
func (s *Spatial) Link(node, dir int) int64 { return s.link[node*MaxPorts+dir] }

// Injected returns node's injected-flit count.
func (s *Spatial) Injected(node int) int64 { return s.injected[node] }

// Deflected returns node's deflection count.
func (s *Spatial) Deflected(node int) int64 { return s.deflected[node] }

// WriteNodeCSV writes the per-node grid as a heatmap-ready table: one
// row per node with its mesh coordinates, so a pivot on (x, y) plots
// directly.
func (s *Spatial) WriteNodeCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "node,x,y,injected,ejected,deflected,starved,throttled\n"); err != nil {
		return err
	}
	width := s.meta.Width
	if width <= 0 {
		width = s.meta.Nodes
	}
	buf := make([]byte, 0, 96)
	for n := 0; n < s.meta.Nodes; n++ {
		buf = buf[:0]
		buf = strconv.AppendInt(buf, int64(n), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(n%width), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(n/width), 10)
		for _, c := range [...]int64{s.injected[n], s.ejected[n], s.deflected[n], s.starved[n], s.throttled[n]} {
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, c, 10)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteLinkCSV writes the link grid: one row per (node, direction)
// output link, zero rows included so consumers get the full lattice.
func (s *Spatial) WriteLinkCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "node,x,y,dir,traversals\n"); err != nil {
		return err
	}
	width := s.meta.Width
	if width <= 0 {
		width = s.meta.Nodes
	}
	dirs := [MaxPorts]string{"N", "E", "S", "W"}
	buf := make([]byte, 0, 64)
	for n := 0; n < s.meta.Nodes; n++ {
		for d := 0; d < MaxPorts; d++ {
			buf = buf[:0]
			buf = strconv.AppendInt(buf, int64(n), 10)
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(n%width), 10)
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(n/width), 10)
			buf = append(buf, ',')
			buf = append(buf, dirs[d]...)
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, s.link[n*MaxPorts+d], 10)
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}
