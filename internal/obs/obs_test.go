// External tests for the observability layer: they drive full
// simulations through the runner presets (so configs flow through the
// sanctioned assembly path) and pin the three export-level contracts —
// a golden interval-sampler series, worker-count invariance of every
// export, and Chrome trace-event validity.
package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"nocsim/internal/obs"
	"nocsim/internal/runner"
	"nocsim/internal/sim"
	"nocsim/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden fixtures")

// testScale is the small deterministic scale every test here runs at.
func testScale() runner.Scale {
	return runner.Scale{Cycles: 8_000, Epoch: 1_000, Seed: 42}
}

// observedConfig assembles the baseline 4x4 BLESS run with every
// collector enabled. workers pins the fabric shard count.
func observedConfig(workers int) sim.Config {
	sc := testScale()
	cat, _ := workload.CategoryByName("HML")
	w := workload.Generate(cat, 16, sc.Seed)
	return runner.Baseline(w, 4, 4, sc,
		runner.WithWorkers(workers),
		runner.WithObs(obs.Options{
			SampleInterval: 1_000,
			TraceSample:    4,
			Spatial:        true,
			Epochs:         true,
		}),
	)
}

// runObserved executes one observed simulation to the test scale.
func runObserved(t *testing.T, workers int) *sim.Sim {
	t.Helper()
	s := sim.New(observedConfig(workers))
	t.Cleanup(s.Close)
	s.Run(testScale().Cycles)
	return s
}

// TestGoldenSamplerJSONL pins the interval-sampler export bytes for a
// small baseline run. The series covers congestion building up on a
// 4x4 HML workload; any change to sampling cadence, delta computation,
// field ordering, or float formatting shows up here. Re-baseline with
// -update in the same commit as an intentional change.
func TestGoldenSamplerJSONL(t *testing.T) {
	s := runObserved(t, 1)
	var buf bytes.Buffer
	if err := s.Obs().Sampler.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "sampler_golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("sampler JSONL drifted from golden fixture (%d vs %d bytes); run with -update if intentional",
			buf.Len(), len(want))
	}
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n != int(testScale().Cycles/1_000) {
		t.Errorf("expected %d samples, got %d", testScale().Cycles/1_000, n)
	}
}

// TestExportsWorkerInvariant is the sharding contract: every export
// must be byte-identical between a sequential fabric and a 4-way
// sharded one, because collector state is owned per node and shards
// partition nodes.
func TestExportsWorkerInvariant(t *testing.T) {
	type exports struct {
		jsonl, csv, trace, nodes, links, epochs, epochsCSV []byte
	}
	collect := func(workers int) exports {
		s := runObserved(t, workers)
		o := s.Obs()
		var e exports
		for _, w := range []struct {
			dst  *[]byte
			emit func(*bytes.Buffer) error
		}{
			{&e.jsonl, func(b *bytes.Buffer) error { return o.Sampler.WriteJSONL(b) }},
			{&e.csv, func(b *bytes.Buffer) error { return o.Sampler.WriteCSV(b) }},
			{&e.trace, func(b *bytes.Buffer) error { return o.Tracer.WriteChromeTrace(b) }},
			{&e.nodes, func(b *bytes.Buffer) error { return o.Spatial.WriteNodeCSV(b) }},
			{&e.links, func(b *bytes.Buffer) error { return o.Spatial.WriteLinkCSV(b) }},
			{&e.epochs, func(b *bytes.Buffer) error { return o.Epochs.WriteJSONL(b) }},
			{&e.epochsCSV, func(b *bytes.Buffer) error { return o.Epochs.WriteCSV(b) }},
		} {
			var buf bytes.Buffer
			if err := w.emit(&buf); err != nil {
				t.Fatal(err)
			}
			*w.dst = buf.Bytes()
		}
		return e
	}
	seq, par := collect(1), collect(4)
	for _, c := range []struct {
		name     string
		got, ref []byte
	}{
		{"sampler JSONL", par.jsonl, seq.jsonl},
		{"sampler CSV", par.csv, seq.csv},
		{"chrome trace", par.trace, seq.trace},
		{"node grid CSV", par.nodes, seq.nodes},
		{"link grid CSV", par.links, seq.links},
		{"epoch ledger JSONL", par.epochs, seq.epochs},
		{"epoch ledger CSV", par.epochsCSV, seq.epochsCSV},
	} {
		if !bytes.Equal(c.got, c.ref) {
			t.Errorf("%s differs between Workers=1 and Workers=4 (%d vs %d bytes)",
				c.name, len(c.ref), len(c.got))
		}
	}
}

// TestCountersHashWorkerInvariant pins the manifest hash the CI smoke
// compares across -parallel settings: identical simulations must
// digest identically, and any diverging counter must move the hash.
func TestCountersHashWorkerInvariant(t *testing.T) {
	h := func(workers int) string {
		s := runObserved(t, workers)
		m := s.Metrics()
		var retired int64
		for _, r := range m.Retired {
			retired += r
		}
		return obs.HashCounters(m.Net, retired, m.Misses)
	}
	h1, h4 := h(1), h(4)
	if h1 != h4 {
		t.Errorf("counters hash differs across worker counts: %s vs %s", h1, h4)
	}
	s := runObserved(t, 1)
	m := s.Metrics()
	perturbed := m.Net
	perturbed.Deflections++
	if obs.HashCounters(m.Net) == obs.HashCounters(perturbed) {
		t.Error("counters hash insensitive to a single diverging event")
	}
}

// chromeTraceDoc mirrors the Chrome trace-event JSON schema the
// exporter must satisfy for Perfetto's legacy ingestion.
type chromeTraceDoc struct {
	TraceEvents []struct {
		Name string          `json:"name"`
		Cat  string          `json:"cat"`
		Ph   string          `json:"ph"`
		Ts   *int64          `json:"ts"`
		Dur  int64           `json:"dur"`
		Pid  *int64          `json:"pid"`
		Tid  *uint64         `json:"tid"`
		S    string          `json:"s"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestChromeTraceValid checks the export parses as Chrome trace-event
// JSON with the invariants Perfetto needs: a traceEvents array, known
// phase codes, required fields per phase, and non-negative durations.
func TestChromeTraceValid(t *testing.T) {
	s := runObserved(t, 1)
	var buf bytes.Buffer
	if err := s.Obs().Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeTraceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents for a traced congested run")
	}
	sawComplete, sawInstant := false, false
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d misses a required field: %+v", i, ev)
		}
		switch ev.Ph {
		case "X":
			sawComplete = true
			if ev.Dur < 0 {
				t.Fatalf("event %d: negative duration %d", i, ev.Dur)
			}
		case "i":
			sawInstant = true
			if ev.S == "" {
				t.Fatalf("instant event %d misses scope", i)
			}
		default:
			t.Fatalf("event %d: unknown phase %q", i, ev.Ph)
		}
		if *ev.Ts < 0 {
			t.Fatalf("event %d: negative timestamp %d", i, *ev.Ts)
		}
	}
	if !sawComplete || !sawInstant {
		t.Errorf("trace lacks phase variety: complete=%v instant=%v", sawComplete, sawInstant)
	}
}

// TestTracerSamplingDeterministic pins the packet-selection hash: the
// same sequence numbers must always be sampled, independent of tracer
// instance, and sample=1 must select everything.
func TestTracerSamplingDeterministic(t *testing.T) {
	a := obs.NewTracer(16, 1024, 8)
	b := obs.NewTracer(16, 1024, 8)
	selected := 0
	for seq := uint64(0); seq < 4096; seq++ {
		if a.Sampled(seq) != b.Sampled(seq) {
			t.Fatalf("sampling decision for seq %d differs between instances", seq)
		}
		if a.Sampled(seq) {
			selected++
		}
	}
	// A hash-based 1-in-8 selection over 4096 seqs lands near 512.
	if selected < 256 || selected > 1024 {
		t.Errorf("1/8 sampling selected %d of 4096 packets", selected)
	}
	all := obs.NewTracer(16, 1024, 1)
	for seq := uint64(0); seq < 64; seq++ {
		if !all.Sampled(seq) {
			t.Fatalf("sample=1 must trace every packet, missed seq %d", seq)
		}
	}
}
