package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"nocsim/internal/noc"
)

// EventKind labels one point in a flit's lifecycle.
type EventKind uint8

const (
	// EvEnqueue marks queue entry at the source NIC. It is synthesized
	// from the flit's Enq timestamp when the flit injects, so packets
	// that never leave the NIC do not appear in the trace.
	EvEnqueue EventKind = iota
	// EvInject marks network entry at the source router.
	EvInject
	// EvDeflect marks a non-productive output-port grant.
	EvDeflect
	// EvBuffer marks entry into an in-network buffer (a BLESS side
	// buffer, a VC input buffer, or a ring-bridge transfer FIFO).
	EvBuffer
	// EvEject marks ejection into the destination NIC.
	EvEject
	// EvDrop marks a discarded flit. No current fabric is lossy; the
	// kind is defined so lossy extensions trace without schema changes.
	EvDrop
)

func (k EventKind) String() string {
	switch k {
	case EvEnqueue:
		return "enqueue"
	case EvInject:
		return "inject"
	case EvDeflect:
		return "deflect"
	case EvBuffer:
		return "buffer"
	case EvEject:
		return "eject"
	case EvDrop:
		return "drop"
	}
	return "unknown"
}

// Event is one recorded lifecycle point. Span events (inject, eject)
// carry Start, the cycle the spanned interval began (queue entry resp.
// network entry), so the exporter can emit durations without pairing
// up records.
type Event struct {
	Cycle int64
	Start int64
	Seq   uint64
	Node  int32
	Src   int32
	Dst   int32
	Index uint8
	PKind noc.Kind
	Kind  EventKind
}

// Tracer records lifecycle events for a deterministic sample of
// packets into bounded per-node rings. A node's events are recorded
// only by the worker shard stepping that node, so rings are
// single-writer and the collected trace is identical at any shard
// count; when a ring fills, its oldest events are overwritten (the
// drop count is kept so exports can report truncation).
type Tracer struct {
	mod     uint64
	ringCap int

	rings [][]Event
	next  []int32 // per-node write cursor
	lost  []int64 // per-node overwritten-event count
}

// NewTracer samples roughly 1/sample of all packets into per-node
// rings splitting budget events across nodes (at least 64 per node).
func NewTracer(nodes, budget int, sample uint64) *Tracer {
	if nodes <= 0 {
		panic("obs: tracer needs at least one node")
	}
	if sample == 0 {
		sample = 1
	}
	per := budget / nodes
	if per < 64 {
		per = 64
	}
	t := &Tracer{
		mod:     sample,
		ringCap: per,
		rings:   make([][]Event, nodes),
		next:    make([]int32, nodes),
		lost:    make([]int64, nodes),
	}
	return t
}

// Sampled reports whether packets with this sequence number are being
// traced. Fabrics may use it to skip event assembly entirely.
func (t *Tracer) Sampled(seq uint64) bool {
	return t.mod == 1 || mix64(seq)%t.mod == 0
}

func (t *Tracer) record(node int, ev Event) {
	ring := t.rings[node]
	if ring == nil {
		ring = make([]Event, 0, t.ringCap)
	}
	if len(ring) < t.ringCap {
		t.rings[node] = append(ring, ev)
		return
	}
	ring[t.next[node]] = ev
	t.next[node]++
	if int(t.next[node]) == t.ringCap {
		t.next[node] = 0
	}
	t.lost[node]++
}

// Inject records network entry (and synthesizes the enqueue event from
// the flit's queue-entry timestamp for head flits).
func (t *Tracer) Inject(cycle int64, node int, f *noc.Flit) {
	if !t.Sampled(f.Seq) {
		return
	}
	ev := Event{
		Cycle: cycle, Start: f.Enq, Seq: f.Seq,
		Node: int32(node), Src: f.Src, Dst: f.Dst,
		Index: f.Index, PKind: f.Kind, Kind: EvInject,
	}
	if f.Index == 0 {
		enq := ev
		enq.Cycle = f.Enq
		enq.Start = f.Enq
		enq.Kind = EvEnqueue
		t.record(node, enq)
	}
	t.record(node, ev)
}

// Deflect records a non-productive port grant.
func (t *Tracer) Deflect(cycle int64, node int, f *noc.Flit) {
	t.instant(cycle, node, f, EvDeflect)
}

// Buffer records entry into an in-network buffer.
func (t *Tracer) Buffer(cycle int64, node int, f *noc.Flit) {
	t.instant(cycle, node, f, EvBuffer)
}

// Drop records a discarded flit.
func (t *Tracer) Drop(cycle int64, node int, f *noc.Flit) {
	t.instant(cycle, node, f, EvDrop)
}

func (t *Tracer) instant(cycle int64, node int, f *noc.Flit, k EventKind) {
	if !t.Sampled(f.Seq) {
		return
	}
	t.record(node, Event{
		Cycle: cycle, Start: cycle, Seq: f.Seq,
		Node: int32(node), Src: f.Src, Dst: f.Dst,
		Index: f.Index, PKind: f.Kind, Kind: k,
	})
}

// Eject records ejection; the span start is the flit's injection cycle.
func (t *Tracer) Eject(cycle int64, node int, f *noc.Flit) {
	if !t.Sampled(f.Seq) {
		return
	}
	t.record(node, Event{
		Cycle: cycle, Start: f.Inject, Seq: f.Seq,
		Node: int32(node), Src: f.Src, Dst: f.Dst,
		Index: f.Index, PKind: f.Kind, Kind: EvEject,
	})
}

// Events returns every recorded event in the canonical order (cycle,
// then packet, then kind, then node, then flit index): a global order
// independent of ring layout and shard count.
func (t *Tracer) Events() []Event {
	var out []Event
	for _, ring := range t.rings {
		out = append(out, ring...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Index < b.Index
	})
	return out
}

// Lost returns the number of events overwritten by full rings.
func (t *Tracer) Lost() int64 {
	var n int64
	for _, l := range t.lost {
		n += l
	}
	return n
}

// ChromeEvent is one record of the Chrome trace-event format
// (Perfetto's legacy JSON ingestion). The flit tracer presents
// simulated cycles as microseconds, so 1 cycle renders as 1 us; other
// producers (the serve layer's job spans) put real microseconds in Ts.
type ChromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	Pid  int64  `json:"pid"`
	Tid  uint64 `json:"tid"`
	S    string `json:"s,omitempty"`
	Args any    `json:"args,omitempty"`
}

type chromeArgs struct {
	Seq   uint64 `json:"seq"`
	Src   int32  `json:"src"`
	Dst   int32  `json:"dst"`
	Node  int32  `json:"node"`
	Flit  uint8  `json:"flit"`
	PKind string `json:"packet_kind"`
}

// chromeTrace is the top-level trace-event JSON object.
type chromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeJSON wraps events in the top-level Chrome trace-event
// object and writes it. Every trace-JSON producer (the flit tracer,
// the serve layer's job spans) funnels through here so the envelope
// stays in one place.
func WriteChromeJSON(w io.Writer, events []ChromeEvent) error {
	out := chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}
	if out.TraceEvents == nil {
		out.TraceEvents = []ChromeEvent{}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&out); err != nil {
		return fmt.Errorf("obs: encoding trace: %w", err)
	}
	return nil
}

// WriteChromeTrace exports the trace in Chrome trace-event JSON. Each
// packet is one track (pid = source node, tid = packet sequence):
// "queue" and "net" complete events span NIC waiting and network
// transit per flit, and deflections/bufferings/drops appear as instant
// events on the same track, positioned at the router that acted.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()
	out := make([]ChromeEvent, 0, len(evs))
	for _, ev := range evs {
		ce := ChromeEvent{
			Cat: ev.PKind.String(),
			Ts:  ev.Start,
			Pid: int64(ev.Src),
			Tid: ev.Seq,
			Args: &chromeArgs{
				Seq: ev.Seq, Src: ev.Src, Dst: ev.Dst, Node: ev.Node,
				Flit: ev.Index, PKind: ev.PKind.String(),
			},
		}
		switch ev.Kind {
		case EvEnqueue:
			ce.Name = "enqueue"
			ce.Ph = "i"
			ce.S = "t"
			ce.Ts = ev.Cycle
		case EvInject:
			ce.Name = "queue"
			ce.Ph = "X"
			ce.Dur = ev.Cycle - ev.Start
		case EvEject:
			ce.Name = "net"
			ce.Ph = "X"
			ce.Dur = ev.Cycle - ev.Start
		default:
			ce.Name = ev.Kind.String()
			ce.Ph = "i"
			ce.S = "t"
			ce.Ts = ev.Cycle
		}
		out = append(out, ce)
	}
	return WriteChromeJSON(w, out)
}
