package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"nocsim/internal/noc"
)

// The congestion decision ledger: a cycle-indexed record of every
// input and output of the throttling decision, one entry per
// controller epoch. The paper's headline result is application-aware
// congestion control, yet end-of-run counters cannot answer "why did
// the controller throttle node 7 at epoch 12" — the ledger can: it
// keeps the per-node IPF/MPKI evidence the controller saw, the rates
// it chose, and the network-layer state (utilization, deflection,
// ejection, starvation) over the same window.
//
// Determinism: the ledger is fed from the simulator's epoch hook
// (sequential, between cycles) with shard-count-invariant inputs, so
// its exports are byte-identical at any Workers or -parallel setting
// and across cold vs warm-forked runs of the same plan.

// EpochNode is one node's evidence row within an epoch: what the
// controller read (IPF, MPKI) and what it applied (sigma, rate).
type EpochNode struct {
	// Node is the node index.
	Node int32 `json:"node"`
	// IPF is the node's instructions-per-flit over the epoch (the
	// controller's application-intensity signal).
	IPF float64 `json:"ipf"`
	// MPKI is the node's L1 misses per kilo-instruction over the epoch.
	MPKI float64 `json:"mpki"`
	// Sigma is the node's measured starvation rate fed to the policy.
	Sigma float64 `json:"sigma"`
	// Rate is the throttling rate applied to the node after the epoch's
	// decision (0 = unthrottled).
	Rate float64 `json:"rate"`
}

// EpochDecision carries the controller's outputs into the ledger.
// Ran is false for epochs where no centralized decision executed (no
// controller, or the distributed scheme, which has no global view).
type EpochDecision struct {
	Ran            bool
	Congested      bool
	MeanIPF        float64
	ThrottledNodes int
	ControlPackets int
}

// EpochRecord is one ledger entry: the decision plus the network-layer
// window it was made in. Network rates are derived from the fabric
// counter delta over (Cycle-epoch, Cycle].
type EpochRecord struct {
	// Epoch is the 1-based epoch index; Cycle the epoch's end cycle.
	Epoch int64 `json:"epoch"`
	Cycle int64 `json:"cycle"`
	// DecisionRan reports whether a centralized controller executed
	// this epoch; the decision fields below are zero when it did not.
	DecisionRan bool `json:"decision_ran"`
	// Congested, MeanIPF, ThrottledNodes and ControlPackets are the
	// decision outputs (core.Decision, flattened).
	Congested      bool    `json:"congested"`
	MeanIPF        float64 `json:"mean_ipf"`
	ThrottledNodes int     `json:"throttled_nodes"`
	ControlPackets int     `json:"control_packets"`
	// Utilization, DeflectionRate, EjectionRate and StarvationRate are
	// the network-layer window rates the decision reacted to.
	Utilization    float64 `json:"utilization"`
	DeflectionRate float64 `json:"deflection_rate"`
	EjectionRate   float64 `json:"ejection_rate"`
	StarvationRate float64 `json:"starvation_rate"`
	// Nodes holds one evidence row per node, in node order.
	Nodes []EpochNode `json:"nodes"`
}

// EpochLedger accumulates the decision records. Like the Sampler it is
// fed between cycles on the stepping goroutine from merged
// (shard-count-invariant) counters, so the series is deterministic by
// construction.
type EpochLedger struct {
	meta    Meta
	records []EpochRecord
	sink    func(EpochRecord)
	prevNet noc.Stats
}

// NewEpochLedger returns an empty ledger.
func NewEpochLedger(m Meta) *EpochLedger {
	return &EpochLedger{meta: m}
}

// Record closes the epoch ending at cycle: net is the cumulative
// fabric counter snapshot, dec the controller's outputs, nodes the
// per-node evidence rows (scratch owned by the caller; copied here).
func (l *EpochLedger) Record(epoch, cycle int64, net noc.Stats, dec EpochDecision, nodes []EpochNode) {
	d := net.Sub(l.prevNet)
	l.prevNet = net

	rec := EpochRecord{
		Epoch:          epoch,
		Cycle:          cycle,
		DecisionRan:    dec.Ran,
		Congested:      dec.Congested,
		MeanIPF:        dec.MeanIPF,
		ThrottledNodes: dec.ThrottledNodes,
		ControlPackets: dec.ControlPackets,
		Utilization:    d.Utilization(),
		DeflectionRate: d.DeflectionRate(),
		Nodes:          append([]EpochNode(nil), nodes...),
	}
	if d.Cycles > 0 && l.meta.Nodes > 0 {
		rec.EjectionRate = float64(d.FlitsEjected) / (float64(d.Cycles) * float64(l.meta.Nodes))
	}
	if d.Cycles > 0 && l.meta.ActiveNodes > 0 {
		rec.StarvationRate = float64(d.StarvedCycles) / (float64(d.Cycles) * float64(l.meta.ActiveNodes))
	}
	l.records = append(l.records, rec)
	if l.sink != nil {
		l.sink(rec)
	}
}

// Records returns the recorded series (shared backing array; callers
// must not mutate).
func (l *EpochLedger) Records() []EpochRecord { return l.records }

// SetSink registers fn to receive every subsequently recorded entry,
// synchronously on the recording goroutine. Entries recorded before
// attachment are replayed immediately, so a consumer attaching to a
// checkpoint-restored run still sees the full ledger. A nil fn
// detaches. (Same contract as Sampler.SetSink.)
func (l *EpochLedger) SetSink(fn func(EpochRecord)) {
	l.sink = fn
	if fn == nil {
		return
	}
	for _, rec := range l.records {
		fn(rec)
	}
}

// WriteJSONL writes the ledger as one JSON object per line. Field
// order follows the struct declarations, so the output is byte-stable.
func (l *EpochLedger) WriteJSONL(w io.Writer) error {
	for i := range l.records {
		b, err := json.Marshal(&l.records[i])
		if err != nil {
			return fmt.Errorf("obs: encoding epoch record: %w", err)
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// epochCSVHeader lists the CSV columns: one row per (epoch, node) with
// the epoch-level decision and window columns repeated, so the table
// slices cleanly by either axis.
const epochCSVHeader = "epoch,cycle,decision_ran,congested,mean_ipf,throttled_nodes,control_packets,utilization,deflection_rate,ejection_rate,starvation_rate,node,ipf,mpki,sigma,rate\n"

// WriteCSV writes the ledger as a flat per-node table.
func (l *EpochLedger) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, epochCSVHeader); err != nil {
		return err
	}
	buf := make([]byte, 0, 192)
	for i := range l.records {
		rec := &l.records[i]
		for j := range rec.Nodes {
			nd := &rec.Nodes[j]
			buf = buf[:0]
			buf = strconv.AppendInt(buf, rec.Epoch, 10)
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, rec.Cycle, 10)
			buf = append(buf, ',')
			buf = strconv.AppendBool(buf, rec.DecisionRan)
			buf = append(buf, ',')
			buf = strconv.AppendBool(buf, rec.Congested)
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, rec.MeanIPF, 'g', -1, 64)
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(rec.ThrottledNodes), 10)
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(rec.ControlPackets), 10)
			for _, f := range [...]float64{rec.Utilization, rec.DeflectionRate, rec.EjectionRate, rec.StarvationRate} {
				buf = append(buf, ',')
				buf = strconv.AppendFloat(buf, f, 'g', -1, 64)
			}
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(nd.Node), 10)
			for _, f := range [...]float64{nd.IPF, nd.MPKI, nd.Sigma, nd.Rate} {
				buf = append(buf, ',')
				buf = strconv.AppendFloat(buf, f, 'g', -1, 64)
			}
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}
