// Package obs is the simulator's observability layer: deterministic,
// cycle-indexed collectors that watch a running simulation without
// perturbing it. Every figure in the paper is a dynamic phenomenon —
// congestion collapse, phase-driven IPF swings, the throttler's
// per-epoch reaction — and end-of-run aggregates cannot show *when*
// or *where* a run went wrong. The collectors here can.
//
// Five components:
//
//   - Sampler: snapshots interval deltas of the fabric counters plus
//     application-layer signals (IPC, IPF, throttle rate, starvation
//     rate) every N cycles, exportable as JSONL or CSV time series.
//   - EpochLedger: the congestion decision ledger — one record per
//     controller epoch holding every input (per-node IPF/MPKI, sigma)
//     and output (throttle rates, congested verdict) of the throttling
//     decision plus the window's network rates, as JSONL or CSV.
//   - Tracer: flit-lifecycle events (enqueue/inject/deflect/buffer/
//     eject/drop) for a deterministic sample of packets, held in
//     bounded per-node rings and exported as Chrome trace-event JSON
//     so a run opens in Perfetto with cycles as timestamps.
//   - Spatial: per-link traversal counts and per-node injection/
//     ejection/deflection/starvation grids, dumped as heatmap-ready
//     CSV tables.
//   - Manifest: a reproducibility record (config, seed, go version,
//     counter hash) written alongside every observed run.
//
// Determinism contract: every collector is indexed by simulated cycle,
// never the host clock (nocvet's wallclock rule holds here — only
// internal/runner and cmd/ may time runs, and the manifest's elapsed
// field is filled by them). Collector state is owned per node, and the
// fabrics' worker shards partition nodes, so a shard writes only its
// own rows: exports are byte-identical at any Workers or -parallel
// setting. When a collector is disabled its fabric-side pointer is
// nil and the hot path pays one predictable branch per event.
package obs

// Options configures the layer for one simulation. The zero value
// disables every collector.
type Options struct {
	// SampleInterval, when positive, records one interval sample every
	// that many cycles.
	SampleInterval int64
	// TraceSample, when positive, traces the lifecycle of roughly one
	// in every TraceSample packets (selected by a deterministic hash of
	// the packet sequence number; 1 traces everything).
	TraceSample uint64
	// TraceBudget bounds the total traced-event memory, split evenly
	// into per-node rings (older events of a node are overwritten).
	// 0 means 1<<18 events when tracing is enabled.
	TraceBudget int
	// Spatial enables the per-link and per-node grids.
	Spatial bool
	// Epochs enables the congestion decision ledger (one record per
	// controller epoch).
	Epochs bool
}

// Enabled reports whether any collector is configured.
func (o Options) Enabled() bool {
	return o.SampleInterval > 0 || o.TraceSample > 0 || o.Spatial || o.Epochs
}

// Meta describes the simulated system to the collectors.
type Meta struct {
	// Nodes is the node count; Width and Height the mesh dimensions
	// (ring fabrics pass Nodes x 1).
	Nodes, Width, Height int
	// ActiveNodes counts nodes running an application; rate signals
	// are normalized by it.
	ActiveNodes int
	// FlitsPerMiss converts miss counts to flit counts for IPF.
	FlitsPerMiss float64
}

// Observer owns one simulation's collectors. Fields are nil when the
// corresponding collector is disabled.
type Observer struct {
	Sampler *Sampler
	Tracer  *Tracer
	Spatial *Spatial
	Epochs  *EpochLedger
}

// New builds the collectors opt selects. It returns nil when opt
// disables everything, so callers can gate on the observer pointer.
func New(opt Options, m Meta) *Observer {
	if !opt.Enabled() {
		return nil
	}
	o := &Observer{}
	if opt.SampleInterval > 0 {
		o.Sampler = NewSampler(opt.SampleInterval, m)
	}
	if opt.TraceSample > 0 {
		budget := opt.TraceBudget
		if budget <= 0 {
			budget = 1 << 18
		}
		o.Tracer = NewTracer(m.Nodes, budget, opt.TraceSample)
	}
	if opt.Spatial {
		o.Spatial = NewSpatial(m)
	}
	if opt.Epochs {
		o.Epochs = NewEpochLedger(m)
	}
	return o
}

// Probe returns the fabric-facing slice of the observer: the two
// collectors fed from inside the per-cycle step loops. Safe on a nil
// observer (returns the zero Probe, which disables every hook).
func (o *Observer) Probe() Probe {
	if o == nil {
		return Probe{}
	}
	return Probe{Tracer: o.Tracer, Spatial: o.Spatial}
}

// Probe carries the hot-path collector pointers into a fabric. A nil
// field compiles the corresponding hooks down to one nil check per
// event; the zero Probe observes nothing.
type Probe struct {
	Tracer  *Tracer
	Spatial *Spatial
}

// mix64 is SplitMix64's output permutation: a cheap, deterministic
// avalanche used to turn structured packet sequence numbers (node ID
// in the high bits, a per-node counter in the low bits) into uniform
// sampling decisions.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
