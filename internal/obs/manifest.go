package obs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"

	"nocsim/internal/noc"
)

// Manifest is the reproducibility record written alongside every
// observed run: everything needed to re-run it (config, seed), to
// interpret it across machines (go version, platform), and to verify
// that a re-run — at any parallelism — produced the same simulation
// (the counters hash). ElapsedMS is the one nondeterministic field; it
// is filled by the runner or the command, the only layers allowed to
// read the wall clock.
type Manifest struct {
	// Label names the run ("fig2/w03").
	Label string `json:"label"`
	// GoVersion, GOOS, GOARCH, GOMAXPROCS and NumCPU describe the
	// executing environment.
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Seed, Nodes and Cycles summarize the run.
	Seed   uint64 `json:"seed"`
	Nodes  int    `json:"nodes"`
	Cycles int64  `json:"cycles"`
	// ElapsedMS is the measured wall-clock time (nondeterministic;
	// compare manifests on CountersHash, never on this).
	ElapsedMS float64 `json:"elapsed_ms"`
	// WarmSource records warm-start provenance: "cold" for a run
	// simulated from cycle 0, otherwise the content digest of the
	// checkpoint the run was forked or resumed from. WarmCycle is the
	// cycle the restored run continued at (0 for cold runs). Restores
	// are byte-exact, so provenance never affects results — it answers
	// "where did this run's prefix come from".
	WarmSource string `json:"warm_source"`
	WarmCycle  int64  `json:"warm_cycle"`
	// CountersHash digests the run's final counters; equal hashes mean
	// the simulations were identical event for event.
	CountersHash string `json:"counters_hash"`
	// Config is the full assembled simulation configuration.
	Config json.RawMessage `json:"config"`
}

// FillEnv populates the environment fields from the running process.
func (m *Manifest) FillEnv() {
	m.GoVersion = runtime.Version()
	m.GOOS = runtime.GOOS
	m.GOARCH = runtime.GOARCH
	m.GOMAXPROCS = runtime.GOMAXPROCS(0)
	m.NumCPU = runtime.NumCPU()
}

// Write emits the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding manifest: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// HashCounters digests the fabric counters plus any extra totals
// (retired instructions, misses) into a short stable hex string. Two
// runs with equal hashes executed the same simulation: every counter
// is a sum over per-cycle events, so a single diverging event moves
// some field. Fields are hashed in declaration order via reflection,
// so a counter added to noc.Stats is automatically covered.
func HashCounters(net noc.Stats, extra ...int64) string {
	h := sha256.New()
	var b [8]byte
	v := reflect.ValueOf(net)
	for i := 0; i < v.NumField(); i++ {
		binary.LittleEndian.PutUint64(b[:], uint64(v.Field(i).Int()))
		h.Write(b[:])
	}
	for _, e := range extra {
		binary.LittleEndian.PutUint64(b[:], uint64(e))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
