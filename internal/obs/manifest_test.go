package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"nocsim/internal/noc"
)

// pinnedStats builds the fixture counters for the hash pin: every
// field set, all distinct, listed in declaration order.
func pinnedStats() noc.Stats {
	return noc.Stats{
		Cycles:             1,
		Links:              2,
		FlitsInjected:      3,
		FlitsEjected:       4,
		PacketsDelivered:   5,
		Deflections:        6,
		LinkTraversals:     7,
		NetFlitLatencySum:  8,
		QueueLatencySum:    9,
		PacketLatencySum:   10,
		StarvedCycles:      11,
		ThrottledCycles:    12,
		WantedCycles:       13,
		BufferReads:        14,
		BufferWrites:       15,
		CrossbarTraversals: 16,
		Arbitrations:       17,
	}
}

// pinnedCountersHash is HashCounters(pinnedStats(), 100, 200), frozen.
// The content-addressed result cache and every manifest comparison
// assume this digest is stable across releases: if this test fails,
// either noc.Stats fields were reordered/added (which silently
// invalidates every stored counters hash — bump deliberately) or the
// hash construction changed.
const pinnedCountersHash = "41c2e518455afcbb4180003a934f794a"

func TestHashCountersPinned(t *testing.T) {
	got := HashCounters(pinnedStats(), 100, 200)
	if got != pinnedCountersHash {
		t.Fatalf("HashCounters(pinned fixture) = %s, want %s (hash construction or noc.Stats layout changed)",
			got, pinnedCountersHash)
	}
}

// TestHashCountersLiteralOrderInvariant pins that the digest depends on
// the struct's declaration order, never on how a literal spells it: the
// same counters written field-last-first hash identically.
func TestHashCountersLiteralOrderInvariant(t *testing.T) {
	reordered := noc.Stats{
		Arbitrations:       17,
		CrossbarTraversals: 16,
		BufferWrites:       15,
		BufferReads:        14,
		WantedCycles:       13,
		ThrottledCycles:    12,
		StarvedCycles:      11,
		PacketLatencySum:   10,
		QueueLatencySum:    9,
		NetFlitLatencySum:  8,
		LinkTraversals:     7,
		Deflections:        6,
		PacketsDelivered:   5,
		FlitsEjected:       4,
		FlitsInjected:      3,
		Links:              2,
		Cycles:             1,
	}
	if got := HashCounters(reordered, 100, 200); got != pinnedCountersHash {
		t.Fatalf("reordered literal hashes to %s, want %s", got, pinnedCountersHash)
	}
}

// TestHashCountersSensitivity: every counter and every extra moves the
// digest — a single diverging event cannot go unnoticed.
func TestHashCountersSensitivity(t *testing.T) {
	base := HashCounters(pinnedStats(), 100, 200)
	s := pinnedStats()
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		mutated := pinnedStats()
		mv := reflect.ValueOf(&mutated).Elem().Field(i)
		mv.SetInt(mv.Int() + 1)
		if HashCounters(mutated, 100, 200) == base {
			t.Errorf("mutating field %s did not change the hash", v.Type().Field(i).Name)
		}
	}
	if HashCounters(pinnedStats(), 101, 200) == base {
		t.Error("mutating an extra did not change the hash")
	}
	if HashCounters(pinnedStats(), 100) == base {
		t.Error("dropping an extra did not change the hash")
	}
}

// TestManifestRoundTrip: Write emits JSON that parses back to the same
// manifest, and FillEnv is stable (idempotent), so re-stamping a
// manifest cannot change its bytes.
func TestManifestRoundTrip(t *testing.T) {
	m := Manifest{
		Label:        "roundtrip/w00",
		Seed:         42,
		Nodes:        16,
		Cycles:       4_000,
		ElapsedMS:    12.5,
		CountersHash: HashCounters(pinnedStats(), 100, 200),
		Config:       json.RawMessage(`{"Width":4,"Height":4}`),
	}
	m.FillEnv()
	if m.GoVersion == "" || m.GOMAXPROCS == 0 || m.NumCPU == 0 {
		t.Fatalf("FillEnv left environment fields empty: %+v", m)
	}

	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("written manifest does not parse: %v", err)
	}
	// The indented writer reflows the embedded raw config's whitespace,
	// so compare it structurally and everything else exactly.
	var cfgIn, cfgOut map[string]any
	if err := json.Unmarshal(m.Config, &cfgIn); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(back.Config, &cfgOut); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfgIn, cfgOut) {
		t.Fatalf("config did not round-trip: %v vs %v", cfgIn, cfgOut)
	}
	norm, normBack := m, back
	norm.Config, normBack.Config = nil, nil
	if !reflect.DeepEqual(norm, normBack) {
		t.Fatalf("manifest did not round-trip:\n in: %+v\nout: %+v", norm, normBack)
	}

	again := back
	again.FillEnv()
	if !reflect.DeepEqual(back, again) {
		t.Fatal("FillEnv is not idempotent on the same process")
	}

	var buf2 bytes.Buffer
	if err := again.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-written manifest bytes differ")
	}
}

// TestSamplerSink pins the streaming hook: a sink observes exactly the
// recorded series, in order, and detaching stops delivery without
// touching the stored samples.
func TestSamplerSink(t *testing.T) {
	s := NewSampler(100, Meta{Nodes: 4, ActiveNodes: 4, FlitsPerMiss: 5})
	var seen []Sample
	s.SetSink(func(sm Sample) { seen = append(seen, sm) })

	s.Record(100, noc.Stats{Cycles: 100, FlitsInjected: 10}, 50, 2)
	s.Record(200, noc.Stats{Cycles: 200, FlitsInjected: 30}, 120, 5)
	s.SetSink(nil)
	s.Record(300, noc.Stats{Cycles: 300, FlitsInjected: 60}, 200, 9)

	if len(seen) != 2 {
		t.Fatalf("sink saw %d samples, want 2 (recorded before detach)", len(seen))
	}
	if got := s.Samples(); len(got) != 3 {
		t.Fatalf("sampler stored %d samples, want 3", len(got))
	}
	if !reflect.DeepEqual(seen, s.Samples()[:2]) {
		t.Fatal("sink samples differ from the stored series")
	}
}
