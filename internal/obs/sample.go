package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"nocsim/internal/noc"
)

// Sample is one interval of the time series: the fabric-counter delta
// over the window plus the application-layer signals the paper's
// dynamic figures plot. All fields are deltas or window rates, not
// cumulative totals, so plotting a column directly gives the time
// dynamics.
type Sample struct {
	// Cycle is the window's end cycle (samples cover (Cycle-N, Cycle]).
	Cycle int64 `json:"cycle"`
	// IPC is the system throughput over the window (sum of per-node
	// retired instructions / window cycles).
	IPC float64 `json:"ipc"`
	// IPF is the aggregate instructions-per-flit over the window; 0
	// when no misses were sent.
	IPF float64 `json:"ipf"`
	// ThrottleRate and StarvationRate are the fraction of active
	// node-cycles spent policy-blocked resp. network-refused.
	ThrottleRate   float64 `json:"throttle_rate"`
	StarvationRate float64 `json:"starvation_rate"`
	// Utilization and AvgNetLatency are the window's network-layer
	// derived metrics.
	Utilization   float64 `json:"utilization"`
	AvgNetLatency float64 `json:"avg_net_latency"`
	// Net is the raw fabric-counter delta over the window.
	Net noc.Stats `json:"net"`
}

// Sampler accumulates the interval time series. It is fed from the
// simulator's step loop (single goroutine, between cycles) and is
// deterministic by construction: every field derives from the merged
// fabric counters and core totals, which are shard-count invariant.
type Sampler struct {
	// Interval is the sampling period in cycles.
	Interval int64

	meta        Meta
	samples     []Sample
	sink        func(Sample)
	prevNet     noc.Stats
	prevRetired int64
	prevMisses  int64
}

// NewSampler returns a sampler recording every interval cycles.
func NewSampler(interval int64, m Meta) *Sampler {
	if interval <= 0 {
		panic("obs: sampler interval must be positive")
	}
	return &Sampler{Interval: interval, meta: m}
}

// Record closes the window ending at cycle: net is the cumulative
// fabric counter snapshot, retired and misses the cumulative core
// totals. Deltas against the previous window are derived here.
func (s *Sampler) Record(cycle int64, net noc.Stats, retired, misses int64) {
	d := net.Sub(s.prevNet)
	dRetired := retired - s.prevRetired
	dMisses := misses - s.prevMisses
	s.prevNet = net
	s.prevRetired = retired
	s.prevMisses = misses

	sm := Sample{
		Cycle:         cycle,
		Net:           d,
		Utilization:   d.Utilization(),
		AvgNetLatency: d.AvgNetLatency(),
	}
	if d.Cycles > 0 {
		sm.IPC = float64(dRetired) / float64(d.Cycles)
		if s.meta.ActiveNodes > 0 {
			nodeCycles := float64(d.Cycles) * float64(s.meta.ActiveNodes)
			sm.ThrottleRate = float64(d.ThrottledCycles) / nodeCycles
			sm.StarvationRate = float64(d.StarvedCycles) / nodeCycles
		}
	}
	if dMisses > 0 && s.meta.FlitsPerMiss > 0 {
		sm.IPF = float64(dRetired) / (float64(dMisses) * s.meta.FlitsPerMiss)
	}
	s.samples = append(s.samples, sm)
	if s.sink != nil {
		s.sink(sm)
	}
}

// SetSink registers fn to receive every subsequently recorded sample,
// synchronously on the recording goroutine (the simulator's step loop,
// between cycles). Streaming consumers — the serve layer's live run
// event streams — attach here; the sink observes the same deterministic
// series the exports contain and cannot perturb it. Samples recorded
// before attachment (a checkpoint-restored prefix, say) are replayed to
// fn immediately, so a consumer attaching to a warm-started run still
// sees the full series. A nil fn detaches.
func (s *Sampler) SetSink(fn func(Sample)) {
	s.sink = fn
	if fn == nil {
		return
	}
	for _, sm := range s.samples {
		fn(sm)
	}
}

// Samples returns the recorded series (shared backing array; callers
// must not mutate).
func (s *Sampler) Samples() []Sample { return s.samples }

// WriteJSONL writes the series as one JSON object per line. Field
// order follows the struct declarations, so the output is byte-stable.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	for i := range s.samples {
		b, err := json.Marshal(&s.samples[i])
		if err != nil {
			return fmt.Errorf("obs: encoding sample: %w", err)
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// csvHeader lists the CSV columns, one per plottable signal plus the
// key raw counters.
const csvHeader = "cycle,ipc,ipf,throttle_rate,starvation_rate,utilization,avg_net_latency,flits_injected,flits_ejected,deflections,starved_cycles,throttled_cycles\n"

// WriteCSV writes the series as a flat table for spreadsheet and
// plotting tools.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, csvHeader); err != nil {
		return err
	}
	buf := make([]byte, 0, 160)
	for i := range s.samples {
		sm := &s.samples[i]
		buf = buf[:0]
		buf = strconv.AppendInt(buf, sm.Cycle, 10)
		for _, f := range [...]float64{sm.IPC, sm.IPF, sm.ThrottleRate, sm.StarvationRate, sm.Utilization, sm.AvgNetLatency} {
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, f, 'g', -1, 64)
		}
		for _, n := range [...]int64{sm.Net.FlitsInjected, sm.Net.FlitsEjected, sm.Net.Deflections, sm.Net.StarvedCycles, sm.Net.ThrottledCycles} {
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, n, 10)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
