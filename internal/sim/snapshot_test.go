package sim

import (
	"bytes"
	"fmt"
	"testing"

	"nocsim/internal/app"
	"nocsim/internal/cache"
	"nocsim/internal/core"
	"nocsim/internal/cpu"
	"nocsim/internal/noc"
	"nocsim/internal/noc/bless"
	"nocsim/internal/noc/buffered"
	"nocsim/internal/noc/hierring"
	"nocsim/internal/obs"
	"nocsim/internal/par"
	"nocsim/internal/snap"
	"nocsim/internal/topology"
	"nocsim/internal/trace"
)

// TestSnapshotCoverageComplete is the codec's rot guard: it walks the
// type graph reachable from the assembled simulator and every concrete
// fabric, controller and mapper, and fails when any state struct has a
// field that is neither serialized nor explicitly waived. Adding a
// field to any of these types without deciding its snapshot fate fails
// here, not in a future bug hunt.
func TestSnapshotCoverageComplete(t *testing.T) {
	problems := snap.Verify(snap.VerifyOptions{
		PkgPrefix: "nocsim/",
		Opaque: []any{
			// Construction-time structure with no mutable simulation state.
			topology.Topology{},
			par.Pool{},
			app.Profile{},
		},
	},
		Sim{}, Config{},
		bless.Fabric{}, buffered.Fabric{}, hierring.Fabric{},
		core.Policy{}, core.Controller{}, core.Static{},
		core.Distributed{}, core.Unaware{}, core.LatencyTriggered{},
		cache.XORInterleave{}, cache.Locality{}, cache.Grouped{}, cache.Fixed{},
		cpu.Core{}, trace.Generator{}, obs.Observer{}, noc.NIC{},
		noc.FlitPool{},
	)
	for _, p := range problems {
		t.Error(p)
	}
}

// snapCase is one byte-identity scenario: a fabric plus the knobs that
// light up its optional state (side buffers, adaptive load, random
// arbitration streams, VC credits, ring bridges).
type snapCase struct {
	name string
	cfg  Config
}

func snapCases() []snapCase {
	apps := func(n int) []*app.Profile {
		out := make([]*app.Profile, n)
		hog := app.MustByName("mcf")
		light := app.MustByName("gromacs")
		for i := range out {
			if i%2 == 0 {
				out[i] = &hog
			} else {
				out[i] = &light
			}
		}
		// Leave a couple of idle nodes so core-presence encoding is
		// exercised.
		out[3] = nil
		out[n-1] = nil
		return out
	}
	base := func(router RouterKind) Config {
		cfg := Config{
			Width: 8, Height: 8,
			Router:     router,
			Apps:       apps(64),
			Controller: Central,
			Params:     core.DefaultParams(),
			Mapping:    ExpMap,
			Seed:       7,
			Writebacks: true,
			Obs: obs.Options{
				SampleInterval: 32,
				TraceSample:    4,
				TraceBudget:    1 << 12,
				Spatial:        true,
				Epochs:         true,
			},
			RecordEpochs: true,
		}
		cfg.Params.Epoch = 64
		return cfg
	}
	bl := base(BLESS)
	blMinBD := base(BLESS)
	blMinBD.SideBuffer = 4
	blMinBD.Adaptive = true
	blMinBD.RandomArb = true
	blMinBD.Controller = Distributed
	blMinBD.ControlTraffic = false
	buf := base(Buffered)
	buf.Controller = StaticUniform
	buf.StaticRate = 0.6
	hr := base(HierRing)
	hr.RingGroup = 8
	hr.Mapping = GroupMap
	hr.Groups = make([]int, 64)
	for i := range hr.Groups {
		hr.Groups[i] = i / 8
	}
	return []snapCase{
		{"bless", bl},
		{"bless-minbd-random-distributed", blMinBD},
		{"buffered-static", buf},
		{"hierring-groupmap", hr},
	}
}

// obsExports concatenates every collector export so a single byte
// comparison covers the sampler series, the trace and the heatmaps.
func obsExports(t *testing.T, s *Sim) []byte {
	t.Helper()
	var b bytes.Buffer
	o := s.Obs()
	if o == nil {
		return nil
	}
	if o.Sampler != nil {
		if err := o.Sampler.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		if err := o.Sampler.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
	}
	if o.Epochs != nil {
		if err := o.Epochs.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		if err := o.Epochs.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
	}
	if o.Tracer != nil {
		if err := o.Tracer.WriteChromeTrace(&b); err != nil {
			t.Fatal(err)
		}
	}
	if o.Spatial != nil {
		if err := o.Spatial.WriteNodeCSV(&b); err != nil {
			t.Fatal(err)
		}
		if err := o.Spatial.WriteLinkCSV(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.Bytes()
}

func countersHash(s *Sim) string {
	var retired int64
	for i := 0; i < s.Topology().Nodes(); i++ {
		if c := s.Core(i); c != nil {
			retired += c.Retired()
		}
	}
	return obs.HashCounters(s.Network().Stats(), retired)
}

// TestSnapshotByteIdentity is the acceptance criterion: for every
// fabric, at Workers 1 and 8, a run snapshotted at cycle k and resumed
// to N must match a straight 0→N run byte for byte — counters hash,
// observability exports, and the full state blob itself.
func TestSnapshotByteIdentity(t *testing.T) {
	const (
		total = 400
		k     = 193 // deliberately not epoch- or sample-aligned
	)
	for _, tc := range snapCases() {
		for _, workers := range []int{1, 8} {
			tc, workers := tc, workers
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				cfg := tc.cfg
				cfg.Workers = workers

				straight := New(cfg)
				defer straight.Close()
				straight.Run(total)
				wantBlob := straight.Snapshot()
				wantHash := countersHash(straight)
				wantObs := obsExports(t, straight)

				head := New(cfg)
				head.Run(k)
				blob := head.Snapshot()
				head.Close()

				resumed, err := Restore(cfg, blob)
				if err != nil {
					t.Fatalf("Restore: %v", err)
				}
				defer resumed.Close()
				if got := resumed.Cycle(); got != k {
					t.Fatalf("restored cycle %d, want %d", got, k)
				}
				resumed.Run(total - k)

				if got := countersHash(resumed); got != wantHash {
					t.Errorf("counters hash diverged: %s != %s", got, wantHash)
				}
				if got := obsExports(t, resumed); !bytes.Equal(got, wantObs) {
					t.Errorf("obs exports diverged (%d vs %d bytes)", len(got), len(wantObs))
				}
				if got := resumed.Snapshot(); !bytes.Equal(got, wantBlob) {
					t.Errorf("state blob diverged (%d vs %d bytes)", len(got), len(wantBlob))
				}
			})
		}
	}
}

// TestSnapshotWorkerInvariance checks the stronger property the
// snapshot store depends on: the blob at cycle k is identical whatever
// Workers produced it, so one checkpoint serves any parallelism.
func TestSnapshotWorkerInvariance(t *testing.T) {
	for _, tc := range snapCases() {
		t.Run(tc.name, func(t *testing.T) {
			var want []byte
			for _, workers := range []int{1, 8} {
				cfg := tc.cfg
				cfg.Workers = workers
				s := New(cfg)
				s.Run(193)
				blob := s.Snapshot()
				s.Close()
				if want == nil {
					want = blob
					continue
				}
				if !bytes.Equal(blob, want) {
					t.Fatalf("blob at Workers=%d differs from Workers=1 (%d vs %d bytes)",
						workers, len(blob), len(want))
				}
			}
		})
	}
}

// TestWarmStartFork covers the modulo-knob fork: a warmup run under
// NormalizeWarm(cfg), snapshotted at cfg.Warmup, restores into
// configurations that differ in measured knobs, and the fork is
// deterministic (two forks of the same blob replay identically).
func TestWarmStartFork(t *testing.T) {
	target := snapCases()[0].cfg // bless + Central + obs
	target.Warmup = 200
	norm := NormalizeWarm(target)
	if norm.Controller != NoControl || norm.Obs.Enabled() || norm.Warmup != 0 {
		t.Fatalf("NormalizeWarm left measured knobs set: %+v", norm)
	}

	warm := New(norm)
	warm.Run(200)
	blob := warm.Snapshot()
	warm.Close()

	runFork := func(cfg Config) (*Sim, string) {
		s, err := Restore(cfg, blob)
		if err != nil {
			t.Fatalf("Restore fork: %v", err)
		}
		if s.Cycle() != 200 {
			t.Fatalf("fork cycle %d, want 200", s.Cycle())
		}
		s.Run(300)
		h := countersHash(s)
		return s, h
	}

	s1, h1 := runFork(target)
	defer s1.Close()
	s2, h2 := runFork(target)
	defer s2.Close()
	if h1 != h2 {
		t.Errorf("fork not deterministic: %s != %s", h1, h2)
	}
	if len(s1.Decisions()) == 0 {
		t.Error("forked Central run recorded no controller decisions")
	}
	if o := s1.Obs(); o == nil || o.Sampler == nil {
		t.Fatal("forked run lost its collectors")
	} else {
		samples := o.Sampler.Samples()
		if len(samples) == 0 {
			t.Fatal("forked run recorded no samples")
		}
		// The first window after the fork must not fold warmup totals in:
		// its cycle delta is bounded by the sampling interval.
		if first := samples[0]; first.Net.Cycles > target.Obs.SampleInterval {
			t.Errorf("first post-fork window spans %d cycles, want <= %d (sampler not primed at the fork)",
				first.Net.Cycles, target.Obs.SampleInterval)
		}
	}

	// A fork into a different measured knob diverges from the first.
	other := target
	other.Controller = StaticUniform
	other.StaticRate = 0.3
	s3, h3 := runFork(other)
	defer s3.Close()
	if h3 == h1 {
		t.Error("static-throttled fork unexpectedly matched the Central fork")
	}

	// Restore guards: a fork must land exactly on Config.Warmup, and
	// only uncontrolled blobs may fork.
	bad := target
	bad.Warmup = 100
	if _, err := Restore(bad, blob); err == nil {
		t.Error("Restore accepted a fork at the wrong Warmup cycle")
	}
	ctrl := target
	ctrl.Warmup = 0
	ctrlSim := New(ctrl)
	ctrlSim.Run(64)
	ctrlBlob := ctrlSim.Snapshot()
	ctrlSim.Close()
	forked := ctrl
	forked.Controller = Distributed
	forked.Warmup = 64
	if _, err := Restore(forked, ctrlBlob); err == nil {
		t.Error("Restore accepted a fork from a controlled run")
	}
}

// TestRestoreRejectsWrongFabric guards the router-kind check.
func TestRestoreRejectsWrongFabric(t *testing.T) {
	cfg := snapCases()[0].cfg
	s := New(cfg)
	s.Run(10)
	blob := s.Snapshot()
	s.Close()
	wrong := cfg
	wrong.Router = Buffered
	if _, err := Restore(wrong, blob); err == nil {
		t.Fatal("Restore accepted a blob from a different fabric")
	}
}
