package sim

import (
	"nocsim/internal/cache"
	"nocsim/internal/core"
	"nocsim/internal/noc"
	"nocsim/internal/obs"
	"nocsim/internal/snap"
	"nocsim/internal/trace"
)

// System-level checkpoint codec: Snapshot serializes the complete
// dynamic state of an assembled simulation — cores, caches, traffic
// generators, the fabric, the congestion controller, the reply wheel
// and the observability collectors — into one deterministic blob, and
// Restore overlays it onto a freshly constructed Sim. The encoding
// depends only on simulated state, never on Workers, pool layout or
// allocation history, so the same (config, cycle) always produces the
// same bytes and a restored run replays the original cycle-for-cycle.
//
// Two restore modes:
//
//   - Same configuration (modulo Workers/Obs/Warmup): full overlay,
//     including controller and collector state. Running the restored
//     Sim to cycle N is byte-identical to a straight 0→N run.
//
//   - Warm-start fork: the blob comes from a run of
//     NormalizeWarm(cfg) — no controller, no observability — stopped
//     exactly at cfg.Warmup. The dynamic state (cores, caches,
//     generators, fabric, RNG streams) is overlaid, the target's
//     controller and collectors start virgin at the fork point, and
//     epoch bookkeeping is re-based so the first epoch measures only
//     post-fork activity. This is how a sweep shares one warmup prefix
//     across grid points that differ only in measured knobs.
//
// Snapshot and Restore run only in sequential regions between Step
// calls; nothing here is reachable from any fabric's hot path.

func init() {
	snap.Cover(Sim{}, snap.Coverage{
		Serialized: []string{
			"cycle", "tokens", "misses", "selfhit", "writebacks",
			"replyWheel", "epochStartRetired", "epochStartMisses",
			"epochStats", "epochs", "controlPackets", "samples",
			"decisions", "cores", "l1s", "mapper", "net", "obs",
			"corePolicy", "controller", "static", "distributed",
		},
		Waived: map[string]string{
			"cfg":          "config: construction input",
			"top":          "construction: topology is config-derived",
			"pool":         "construction: worker pool is execution machinery, not simulated state",
			"nodeFn":       "construction: prebuilt closure over the pool",
			"policy":       "construction: interface view; the state lives in the concrete controller fields",
			"unaware":      "construction: stateless beyond its Policy, which is serialized",
			"latencyCtl":   "construction: stateless beyond its Policy, which is serialized",
			"wheelLen":     "construction: derived from Config.L2Latency",
			"ipfScratch":   "scratch: runEpoch rewrites every element before any read",
			"epochNodes":   "scratch: runEpoch rewrites every element before the ledger copies it",
			"originDigest": "provenance: execution metadata for manifests, never read by the simulation",
			"originCycle":  "provenance: execution metadata for manifests, never read by the simulation",
		},
	})
	snap.Cover(Config{}, snap.Coverage{
		Waived: map[string]string{
			"Width": "config: construction input", "Height": "config: construction input",
			"Topo": "config: construction input", "Router": "config: construction input",
			"Apps": "config: construction input", "Controller": "config: construction input",
			"Params": "config: construction input", "StaticRate": "config: construction input",
			"StaticRates": "config: construction input", "LatencyThresh": "config: construction input",
			"Mapping": "config: construction input", "MeanHops": "config: construction input",
			"Groups": "config: construction input", "ReqFlits": "config: construction input",
			"RepFlits": "config: construction input", "L2Latency": "config: construction input",
			"CPU": "config: construction input", "L1": "config: construction input",
			"PhaseDwellInsns": "config: construction input", "VCs": "config: construction input",
			"BufDepth": "config: construction input", "EjectWidth": "config: construction input",
			"RingGroup": "config: construction input", "RandomArb": "config: construction input",
			"SideBuffer": "config: construction input", "Adaptive": "config: construction input",
			"Warmup": "config: construction input", "Workers": "config: construction input",
			"Seed": "config: construction input", "Obs": "config: construction input",
			"RecordEpochs": "config: construction input", "ControlTraffic": "config: construction input",
			"Writebacks": "config: construction input", "StoreFrac": "config: construction input",
		},
	})
	snap.Cover(pendingReply{}, snap.Coverage{
		Serialized: []string{"home", "dst", "token"},
	})
	snap.Cover(EpochSample{}, snap.Coverage{
		Serialized: []string{"Epoch", "Node", "IPF", "Sigma", "Throttled"},
	})
}

const tagSim = 0x30

// fabricCodec is implemented by all three fabrics.
type fabricCodec interface {
	Snapshot(*snap.Writer)
	Restore(*snap.Reader)
}

// NormalizeWarm maps cfg to its warmup configuration: the run every
// grid point sharing this config prefix starts from. Measured knobs —
// the congestion controller and its parameters, observability, epoch
// recording, control-traffic injection — are zeroed; everything that
// shapes the simulated workload and fabric (topology, apps, mapping,
// packet sizes, fabric geometry, seed) is kept. Workers and Warmup are
// also zeroed: snapshots are parallelism-independent, and the warmup
// run itself has no warmup.
func NormalizeWarm(cfg Config) Config {
	cfg.Controller = NoControl
	cfg.Params = core.Params{}
	cfg.StaticRate = 0
	cfg.StaticRates = nil
	cfg.LatencyThresh = 0
	cfg.ControlTraffic = false
	cfg.RecordEpochs = false
	cfg.Obs = obs.Options{}
	cfg.Workers = 0
	cfg.Warmup = 0
	return cfg
}

// Snapshot serializes the simulation's complete state at the current
// cycle. Call it only between Step calls.
func (s *Sim) Snapshot() []byte {
	// Flush pending idle-tick debt into the policy BEFORE any encoding:
	// the policy's starvation windows are serialized ahead of the fabric
	// section, and a node woken mid-cycle may owe the monitor a tick that
	// only the fabric's lastTick bookkeeping remembers. Restore pins
	// lastTick to the restored cycle, so the debt must be zero at encode
	// time or it is silently dropped.
	if ps, ok := s.net.(noc.PolicySyncer); ok {
		ps.SyncPolicy()
	}
	w := snap.NewWriter()
	s.encode(w)
	return w.Bytes()
}

// Restore assembles New(cfg) and overlays a blob produced by Snapshot.
// The blob must come from the same configuration modulo Workers, Obs
// and Warmup — or, for a warm-start fork, from the NormalizeWarm(cfg)
// run stopped exactly at cfg.Warmup.
func Restore(cfg Config, blob []byte) (*Sim, error) {
	r, err := snap.NewReader(blob)
	if err != nil {
		return nil, err
	}
	s := New(cfg)
	s.decode(r)
	if err := r.Err(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

func (s *Sim) encode(w *snap.Writer) {
	w.Tag(tagSim)
	w.U8(uint8(s.cfg.Router))
	w.U8(uint8(s.cfg.Controller))
	w.I64(s.cycle)
	n := s.top.Nodes()
	w.U32(uint32(n))
	for i := 0; i < n; i++ {
		w.U64(s.tokens[i])
		w.I64(s.misses[i])
		w.I64(s.selfhit[i])
		w.I64(s.writebacks[i])
	}
	for _, slot := range s.replyWheel {
		w.U32(uint32(len(slot)))
		for _, p := range slot {
			w.I32(p.home)
			w.I32(p.dst)
			w.U64(p.token)
		}
	}
	for i, c := range s.cores {
		w.Bool(c != nil)
		if c == nil {
			continue
		}
		c.Snapshot(w)
		c.Source().(*trace.Generator).Snapshot(w)
		s.l1s[i].Snapshot(w)
	}
	cache.SnapshotMapper(w, s.mapper)
	s.encodePolicy(w)
	for i := 0; i < n; i++ {
		w.I64(s.epochStartRetired[i])
		w.I64(s.epochStartMisses[i])
	}
	w.I64(int64(s.epochStats.Links))
	s.epochStats.Snapshot(w)
	w.I64(s.epochs)
	w.I64(s.controlPackets)
	w.U32(uint32(len(s.samples)))
	for i := range s.samples {
		es := &s.samples[i]
		w.I64(es.Epoch)
		w.I32(int32(es.Node))
		w.F64(es.IPF)
		w.F64(es.Sigma)
		w.F64(es.Throttled)
	}
	w.U32(uint32(len(s.decisions)))
	for i := range s.decisions {
		d := &s.decisions[i]
		w.Bool(d.Congested)
		w.F64(d.MeanIPF)
		w.U32(uint32(len(d.Rates)))
		for _, rate := range d.Rates {
			w.F64(rate)
		}
		w.I32(int32(d.ThrottledNodes))
		w.I32(int32(d.ControlPackets))
	}
	s.net.(fabricCodec).Snapshot(w)
	w.Bool(s.obs != nil)
	if s.obs != nil {
		s.obs.Snapshot(w)
	}
}

func (s *Sim) encodePolicy(w *snap.Writer) {
	switch s.cfg.Controller {
	case Central:
		s.corePolicy.Snapshot(w)
		s.controller.SnapshotEpochs(w)
	case UnawareControl, LatencyControl:
		s.corePolicy.Snapshot(w)
	case StaticUniform, StaticPerNode:
		s.static.Snapshot(w)
	case Distributed:
		s.distributed.Snapshot(w)
	}
}

func (s *Sim) decode(r *snap.Reader) {
	r.Expect(tagSim)
	router := RouterKind(r.U8())
	controller := ControllerKind(r.U8())
	cycle := r.I64()
	if r.Err() != nil {
		return
	}
	if router != s.cfg.Router {
		r.Failf("snapshot fabric %v, config wants %v", router, s.cfg.Router)
		return
	}
	fork := controller != s.cfg.Controller
	if fork && controller != NoControl {
		r.Failf("cannot fork a %v run into a %v configuration (warm-start forks come from uncontrolled warmup runs)",
			controller, s.cfg.Controller)
		return
	}
	if fork && s.cfg.Warmup != cycle {
		r.Failf("warm-start fork at cycle %d, but Config.Warmup is %d", cycle, s.cfg.Warmup)
		return
	}
	s.cycle = cycle
	n := s.top.Nodes()
	if got := int(r.U32()); got != n {
		r.Failf("snapshot nodes %d, want %d", got, n)
		return
	}
	for i := 0; i < n; i++ {
		s.tokens[i] = r.U64()
		s.misses[i] = r.I64()
		s.selfhit[i] = r.I64()
		s.writebacks[i] = r.I64()
	}
	for slot := range s.replyWheel {
		c := int(r.U32())
		if r.Err() != nil {
			return
		}
		s.replyWheel[slot] = s.replyWheel[slot][:0]
		for k := 0; k < c; k++ {
			var p pendingReply
			p.home = r.I32()
			p.dst = r.I32()
			p.token = r.U64()
			s.replyWheel[slot] = append(s.replyWheel[slot], p)
		}
	}
	for i, c := range s.cores {
		has := r.Bool()
		if r.Err() != nil {
			return
		}
		if has != (c != nil) {
			r.Failf("snapshot core presence at node %d does not match the app assignment", i)
			return
		}
		if c == nil {
			continue
		}
		c.Restore(r)
		c.Source().(*trace.Generator).Restore(r)
		s.l1s[i].Restore(r)
	}
	cache.RestoreMapper(r, s.mapper)
	s.decodePolicy(r, controller)
	for i := 0; i < n; i++ {
		s.epochStartRetired[i] = r.I64()
		s.epochStartMisses[i] = r.I64()
	}
	links := int(r.I64())
	s.epochStats.Restore(r)
	s.epochStats.Links = links
	s.epochs = r.I64()
	s.controlPackets = r.I64()
	ns := int(r.U32())
	if r.Err() != nil {
		return
	}
	s.samples = s.samples[:0]
	for i := 0; i < ns; i++ {
		var es EpochSample
		es.Epoch = r.I64()
		es.Node = int(r.I32())
		es.IPF = r.F64()
		es.Sigma = r.F64()
		es.Throttled = r.F64()
		if r.Err() != nil {
			return
		}
		s.samples = append(s.samples, es)
	}
	nd := int(r.U32())
	if r.Err() != nil {
		return
	}
	s.decisions = s.decisions[:0]
	for i := 0; i < nd; i++ {
		var d core.Decision
		d.Congested = r.Bool()
		d.MeanIPF = r.F64()
		nr := int(r.U32())
		if r.Err() != nil {
			return
		}
		d.Rates = make([]float64, nr)
		for j := range d.Rates {
			d.Rates[j] = r.F64()
		}
		d.ThrottledNodes = int(r.I32())
		d.ControlPackets = int(r.I32())
		s.decisions = append(s.decisions, d)
	}
	s.net.(fabricCodec).Restore(r)
	hasObs := r.Bool()
	if r.Err() != nil {
		return
	}
	switch {
	case hasObs && s.obs != nil:
		s.obs.Restore(r)
	case hasObs:
		r.Failf("snapshot has observability state but the configuration disables it")
	case s.obs != nil:
		// Warm-start into an observed run: collectors begin at the fork
		// point; base the sampler's and the ledger's first windows there
		// too.
		if s.obs.Sampler != nil {
			var retired, misses int64
			for i, c := range s.cores {
				if c == nil {
					continue
				}
				retired += c.Retired()
				misses += s.misses[i]
			}
			s.obs.Sampler.Prime(s.net.Stats(), retired, misses)
		}
		if s.obs.Epochs != nil {
			s.obs.Epochs.Prime(s.net.Stats())
		}
	}
	if fork && r.Err() == nil {
		s.resetForFork()
	}
}

func (s *Sim) decodePolicy(r *snap.Reader, controller ControllerKind) {
	switch controller {
	case Central:
		s.restorePolicy(r)
		if s.controller != nil {
			s.controller.RestoreEpochs(r)
		} else {
			// Fork path never reaches here (forks restore NoControl
			// blobs), so a nil controller means a corrupt blob.
			r.Failf("central-controller section without a central controller")
		}
	case UnawareControl, LatencyControl:
		s.restorePolicy(r)
	case StaticUniform, StaticPerNode:
		if s.static == nil {
			r.Failf("static-policy section without a static policy")
			return
		}
		s.static.Restore(r)
	case Distributed:
		if s.distributed == nil {
			r.Failf("distributed-policy section without a distributed policy")
			return
		}
		s.distributed.Restore(r)
	}
}

func (s *Sim) restorePolicy(r *snap.Reader) {
	if s.corePolicy == nil {
		r.Failf("throttling-policy section without a throttling policy")
		return
	}
	s.corePolicy.Restore(r)
}

// resetForFork re-bases epoch bookkeeping at the fork point: the target
// controller engages with a virgin policy, its first epoch measures
// only post-fork IPF and starvation, and recorded series start empty.
func (s *Sim) resetForFork() {
	for i, c := range s.cores {
		if c == nil {
			s.epochStartRetired[i] = 0
			s.epochStartMisses[i] = 0
			continue
		}
		s.epochStartRetired[i] = c.Retired()
		s.epochStartMisses[i] = s.misses[i]
	}
	s.epochStats = s.net.Stats()
	s.epochs = 0
	s.controlPackets = 0
	s.samples = s.samples[:0]
	s.decisions = s.decisions[:0]
}
