package sim

import (
	"testing"

	"nocsim/internal/app"
	"nocsim/internal/core"
	"nocsim/internal/workload"
)

// uniformApps assigns the same profile to every node.
func uniformApps(n int, name string) []*app.Profile {
	p := app.MustByName(name)
	apps := make([]*app.Profile, n)
	for i := range apps {
		apps[i] = &p
	}
	return apps
}

func fastParams() core.Params {
	p := core.DefaultParams()
	p.Epoch = 10_000
	return p
}

func TestComputeBoundSystem(t *testing.T) {
	s := New(Config{Apps: uniformApps(16, "povray"), Seed: 1, Params: fastParams()})
	s.Run(50_000)
	m := s.Metrics()
	if m.ThroughputPerNode < 2.5 {
		t.Errorf("povray (CPU-bound) per-node IPC = %v, want near 3", m.ThroughputPerNode)
	}
	if m.NetUtilization > 0.01 {
		t.Errorf("CPU-bound workload utilization %v, want ~0", m.NetUtilization)
	}
}

func TestMemoryBoundSystemLoadsNetwork(t *testing.T) {
	s := New(Config{Apps: uniformApps(16, "mcf"), Seed: 2, Params: fastParams()})
	s.Run(100_000)
	m := s.Metrics()
	if m.NetUtilization < 0.2 {
		t.Errorf("all-mcf utilization %v, want heavy load", m.NetUtilization)
	}
	if m.ThroughputPerNode <= 0 || m.ThroughputPerNode > 1.5 {
		t.Errorf("all-mcf per-node IPC %v out of plausible range", m.ThroughputPerNode)
	}
	if m.StarvationRate == 0 {
		t.Error("congested bufferless network must starve injections")
	}
	// Self-throttling (§3.1): utilization never reaches 1.
	if m.NetUtilization >= 0.99 {
		t.Errorf("utilization %v: self-throttling should prevent saturation", m.NetUtilization)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Metrics {
		s := New(Config{Apps: uniformApps(16, "mcf"), Seed: 7, Params: fastParams()})
		s.Run(30_000)
		return s.Metrics()
	}
	a, b := run(), run()
	if a.SystemThroughput != b.SystemThroughput || a.Net != b.Net {
		t.Error("identical seeds must give identical runs")
	}
}

func TestSeedMatters(t *testing.T) {
	mk := func(seed uint64) float64 {
		s := New(Config{Apps: uniformApps(16, "mcf"), Seed: seed, Params: fastParams()})
		s.Run(20_000)
		return s.Metrics().SystemThroughput
	}
	if mk(1) == mk(2) {
		t.Error("different seeds gave bit-identical throughput (suspicious)")
	}
}

func TestMeasuredIPFMatchesProfile(t *testing.T) {
	// A single mcf core on an empty network: measured IPF must be near
	// Table 1's 1.0.
	apps := make([]*app.Profile, 16)
	p := app.MustByName("mcf")
	apps[5] = &p
	s := New(Config{Apps: apps, Seed: 3, Params: fastParams()})
	s.Run(300_000)
	m := s.Metrics()
	if m.IPF[5] < 0.7 || m.IPF[5] > 1.4 {
		t.Errorf("measured IPF %v, want near 1.0", m.IPF[5])
	}
	if m.ActiveNodes != 1 {
		t.Errorf("active nodes %d, want 1", m.ActiveNodes)
	}
}

func TestIdleNodesStayIdle(t *testing.T) {
	apps := make([]*app.Profile, 16)
	p := app.MustByName("mcf")
	apps[0] = &p
	s := New(Config{Apps: apps, Seed: 4, Params: fastParams()})
	s.Run(20_000)
	m := s.Metrics()
	for i := 1; i < 16; i++ {
		if m.Retired[i] != 0 {
			t.Errorf("idle node %d retired %d instructions", i, m.Retired[i])
		}
	}
}

// The headline mechanism: under a congested heterogeneous workload, the
// central controller must improve system throughput substantially over
// the open baseline (Fig. 7's positive gains). The workload mixes heavy
// applications of different IPF — application-awareness is precisely
// what the mechanism exploits; a perfectly homogeneous workload offers
// no "whom to throttle" signal and little gain.
func TestCentralControllerImprovesCongestedWorkload(t *testing.T) {
	cat, _ := workload.CategoryByName("H")
	w := workload.Generate(cat, 16, 2)
	run := func(ctl ControllerKind) float64 {
		s := New(Config{
			Apps:       w.Apps,
			Controller: ctl,
			Params:     fastParams(),
			Seed:       5,
		})
		s.Run(150_000)
		return s.Metrics().SystemThroughput
	}
	base := run(NoControl)
	throttled := run(Central)
	if throttled < base*1.05 {
		t.Errorf("central control %.3f must beat baseline %.3f by >5%% on a congested H workload", throttled, base)
	}
}

func TestControllerDoesNotHurtLightWorkload(t *testing.T) {
	run := func(ctl ControllerKind) float64 {
		s := New(Config{
			Apps:       uniformApps(16, "povray"),
			Controller: ctl,
			Params:     fastParams(),
			Seed:       6,
		})
		s.Run(100_000)
		return s.Metrics().SystemThroughput
	}
	base := run(NoControl)
	throttled := run(Central)
	if throttled < base*0.98 {
		t.Errorf("central control %.3f must not hurt an uncongested workload (base %.3f)", throttled, base)
	}
}

func TestControllerEpochsRun(t *testing.T) {
	s := New(Config{
		Apps:       uniformApps(16, "mcf"),
		Controller: Central,
		Params:     fastParams(),
		Seed:       7,
	})
	s.Run(100_000)
	if len(s.Decisions()) != 10 {
		t.Errorf("decisions = %d, want 10 epochs", len(s.Decisions()))
	}
	congested := 0
	for _, d := range s.Decisions() {
		if d.Congested {
			congested++
		}
	}
	if congested == 0 {
		t.Error("all-mcf workload never flagged congestion")
	}
	if s.ControlPackets() != int64(10*2*16) {
		t.Errorf("control packets %d, want 2n per epoch", s.ControlPackets())
	}
}

func TestStaticUniformThrottling(t *testing.T) {
	run := func(rate float64) Metrics {
		s := New(Config{
			Apps:       uniformApps(16, "mcf"),
			Controller: StaticUniform,
			StaticRate: rate,
			Params:     fastParams(),
			Seed:       8,
		})
		s.Run(150_000)
		return s.Metrics()
	}
	open := run(0)
	heavy := run(0.95)
	// Heavy throttling must reduce network load.
	if heavy.NetUtilization >= open.NetUtilization {
		t.Errorf("95%% throttle utilization %v, want below open %v",
			heavy.NetUtilization, open.NetUtilization)
	}
}

func TestStaticPerNode(t *testing.T) {
	rates := make([]float64, 16)
	for i := 0; i < 8; i++ {
		rates[i] = 0.9
	}
	s := New(Config{
		Apps:        uniformApps(16, "mcf"),
		Controller:  StaticPerNode,
		StaticRates: rates,
		Params:      fastParams(),
		Seed:        9,
	})
	s.Run(100_000)
	m := s.Metrics()
	// Throttled nodes retire fewer instructions than unthrottled ones.
	var thr, unthr int64
	for i := 0; i < 8; i++ {
		thr += m.Retired[i]
	}
	for i := 8; i < 16; i++ {
		unthr += m.Retired[i]
	}
	if thr >= unthr {
		t.Errorf("throttled half retired %d >= unthrottled %d", thr, unthr)
	}
}

func TestDistributedControllerReacts(t *testing.T) {
	s := New(Config{
		Apps:       uniformApps(16, "mcf"),
		Controller: Distributed,
		Params:     fastParams(),
		Seed:       10,
	})
	s.Run(200_000)
	if s.distributed.Signals() == 0 {
		t.Error("congested all-mcf run produced no congestion-bit signals")
	}
}

func TestBufferedSystem(t *testing.T) {
	s := New(Config{
		Apps:   uniformApps(16, "mcf"),
		Router: Buffered,
		Params: fastParams(),
		Seed:   11,
	})
	s.Run(100_000)
	m := s.Metrics()
	if m.SystemThroughput <= 0 {
		t.Error("buffered system made no progress")
	}
	if m.Net.BufferWrites == 0 {
		t.Error("buffered fabric recorded no buffer events")
	}
	if m.Net.Deflections != 0 {
		t.Error("buffered fabric must not deflect")
	}
}

func TestExpLocalityMapping(t *testing.T) {
	s := New(Config{
		Apps:  uniformApps(64, "mcf"),
		Width: 8, Height: 8,
		Mapping: ExpMap, MeanHops: 1,
		Params: fastParams(),
		Seed:   12,
	})
	s.Run(50_000)
	m := s.Metrics()
	if m.Misses == 0 {
		t.Fatal("no misses")
	}
	// With mean hop distance 1, a large share of requests are local.
	frac := float64(m.LocalMisses) / float64(m.Misses)
	if frac < 0.2 || frac > 0.6 {
		t.Errorf("local-slice fraction %v, want ~0.39 (P(round(Exp(1))=0))", frac)
	}
	// Average network latency should reflect short distances.
	if m.AvgNetLatency > 30 {
		t.Errorf("latency %v too high for 1-hop locality", m.AvgNetLatency)
	}
}

func TestUnawareAndLatencyControllersRun(t *testing.T) {
	for _, kind := range []ControllerKind{UnawareControl, LatencyControl} {
		s := New(Config{
			Apps:       uniformApps(16, "mcf"),
			Controller: kind,
			Params:     fastParams(),
			Seed:       13,
		})
		s.Run(60_000)
		if s.Metrics().SystemThroughput <= 0 {
			t.Errorf("%v system made no progress", kind)
		}
	}
}

func TestControlTrafficInjected(t *testing.T) {
	s := New(Config{
		Apps:           uniformApps(16, "mcf"),
		Controller:     Central,
		Params:         fastParams(),
		ControlTraffic: true,
		Seed:           14,
	})
	s.Run(50_000)
	if s.ControlPackets() == 0 {
		t.Error("no control packets accounted")
	}
}

func TestRecordEpochs(t *testing.T) {
	s := New(Config{
		Apps:         uniformApps(16, "mcf"),
		Controller:   Central,
		Params:       fastParams(),
		RecordEpochs: true,
		Seed:         15,
	})
	s.Run(50_000)
	if len(s.Samples()) != 5*16 {
		t.Errorf("samples = %d, want 5 epochs x 16 nodes", len(s.Samples()))
	}
}

func TestWeightedSpeedup(t *testing.T) {
	shared := []float64{0.5, 1.0, 0}
	alone := []float64{1.0, 2.0, 0}
	if ws := WeightedSpeedup(shared, alone); ws != 1.0 {
		t.Errorf("WS = %v, want 1.0", ws)
	}
}

func TestTorusSystem(t *testing.T) {
	s := New(Config{
		Apps:   uniformApps(16, "mcf"),
		Topo:   1, // torus
		Params: fastParams(),
		Seed:   16,
	})
	s.Run(50_000)
	if s.Metrics().SystemThroughput <= 0 {
		t.Error("torus system made no progress")
	}
}

func TestPanicsOnAppCountMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched app count did not panic")
		}
	}()
	New(Config{Apps: make([]*app.Profile, 3)})
}

func BenchmarkSim4x4AllMcf(b *testing.B) {
	s := New(Config{Apps: uniformApps(16, "mcf"), Seed: 1, Params: fastParams()})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkSim8x8AllMcf(b *testing.B) {
	s := New(Config{
		Apps:  uniformApps(64, "mcf"),
		Width: 8, Height: 8, Seed: 1, Params: fastParams(),
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func TestWritebackExtension(t *testing.T) {
	run := func(wb bool) Metrics {
		s := New(Config{
			Apps:       uniformApps(16, "mcf"),
			Writebacks: wb,
			Params:     fastParams(),
			Seed:       20,
		})
		s.Run(100_000)
		return s.Metrics()
	}
	off := run(false)
	on := run(true)
	if off.Writebacks != 0 {
		t.Errorf("writebacks off but %d recorded", off.Writebacks)
	}
	if on.Writebacks == 0 {
		t.Fatal("writebacks on but none recorded for a streaming store workload")
	}
	// Write traffic adds load: utilization must rise.
	if on.NetUtilization <= off.NetUtilization {
		t.Errorf("writeback traffic should raise utilization: %.3f vs %.3f",
			on.NetUtilization, off.NetUtilization)
	}
}

func TestWritebacksConserveFlits(t *testing.T) {
	// All injected flits (requests + replies + writebacks) must still be
	// ejected; no packets may strand in reassembly.
	s := New(Config{
		Apps:       uniformApps(16, "mcf"),
		Writebacks: true,
		Params:     fastParams(),
		Seed:       21,
	})
	s.Run(50_000)
	// Drain: stop the cores from injecting new work by just stepping the
	// fabric until quiet (bounded).
	net := s.Network()
	for i := 0; i < 200_000 && !net.Drained(); i++ {
		net.Step()
	}
	st := net.Stats()
	if st.FlitsInjected != st.FlitsEjected {
		t.Errorf("flits inj %d != ej %d after drain", st.FlitsInjected, st.FlitsEjected)
	}
}

func TestSideBufferAndAdaptiveThroughSim(t *testing.T) {
	s := New(Config{
		Apps:       uniformApps(16, "mcf"),
		SideBuffer: 4,
		Adaptive:   true,
		Params:     fastParams(),
		Seed:       22,
	})
	s.Run(50_000)
	m := s.Metrics()
	if m.SystemThroughput <= 0 {
		t.Error("side-buffered adaptive system made no progress")
	}
	if m.Net.BufferWrites == 0 {
		t.Error("side buffer never used under all-mcf load")
	}
}
