package sim

import (
	"testing"
)

// Golden regression tests: the simulator is fully deterministic, so one
// known-good metric snapshot per configuration guards every layer
// (trace generation, caches, fabric arbitration, controller decisions)
// against silent behavioural drift. If an intentional modelling change
// shifts these numbers, re-baseline them in the same commit and say why
// in the commit message.
//
// The assertions use wide-enough-to-be-meaningful exact counters (flit
// totals) rather than floating-point summaries.

type golden struct {
	name          string
	cfg           Config
	cycles        int64
	flitsInjected int64
	retiredTotal  int64
}

func goldenCases() []golden {
	p := fastParams()
	return []golden{
		{
			name:          "bless-open-mcf",
			cfg:           Config{Apps: uniformApps(16, "mcf"), Params: p, Seed: 1234},
			cycles:        30_000,
			flitsInjected: 224_083,
			retiredTotal:  205_249,
		},
		{
			name: "bless-central-H",
			cfg: Config{Apps: uniformApps(16, "mcf"), Controller: Central,
				Params: p, Seed: 1234},
			cycles:        30_000,
			flitsInjected: 219_897,
			retiredTotal:  236_964,
		},
		{
			name: "buffered-mcf",
			cfg: Config{Apps: uniformApps(16, "mcf"), Router: Buffered,
				Params: p, Seed: 1234},
			cycles:        30_000,
			flitsInjected: 286_081,
			retiredTotal:  268_320,
		},
		{
			name: "hierring-mcf",
			cfg: Config{Apps: uniformApps(16, "mcf"), Router: HierRing,
				Params: p, Seed: 1234},
			cycles:        30_000,
			flitsInjected: 61_218,
			retiredTotal:  55_553,
		},
		{
			name: "buffered-central-mcf",
			cfg: Config{Apps: uniformApps(16, "mcf"), Router: Buffered,
				Controller: Central, Params: p, Seed: 1234},
			cycles:        30_000,
			flitsInjected: 270_727,
			retiredTotal:  284_720,
		},
	}
}

func TestGoldenCounters(t *testing.T) {
	// The exact pinned counters. A legitimate modelling change may move
	// them: re-baseline in the same commit and explain why.
	for _, g := range goldenCases() {
		s := New(g.cfg)
		s.Run(g.cycles)
		m := s.Metrics()
		if m.Net.FlitsInjected != g.flitsInjected {
			t.Errorf("%s: flitsInjected = %d, golden %d", g.name, m.Net.FlitsInjected, g.flitsInjected)
		}
		var retired int64
		for _, r := range m.Retired {
			retired += r
		}
		if retired != g.retiredTotal {
			t.Errorf("%s: retiredTotal = %d, golden %d", g.name, retired, g.retiredTotal)
		}
	}
}

func TestGoldenDeterminism(t *testing.T) {
	// The golden property this suite relies on: the same configuration
	// always produces bit-identical counters, across repeated runs in
	// one process and across worker counts.
	for _, g := range goldenCases() {
		var first Metrics
		for trial := 0; trial < 2; trial++ {
			s := New(g.cfg)
			s.Run(g.cycles)
			m := s.Metrics()
			if trial == 0 {
				first = m
				continue
			}
			if m.Net.FlitsInjected != first.Net.FlitsInjected {
				t.Errorf("%s: flit count varies across runs: %d vs %d",
					g.name, m.Net.FlitsInjected, first.Net.FlitsInjected)
			}
			var sum, firstSum int64
			for i := range m.Retired {
				sum += m.Retired[i]
				firstSum += first.Retired[i]
			}
			if sum != firstSum {
				t.Errorf("%s: retired count varies across runs", g.name)
			}
		}
	}
}

func TestGoldenPlausibility(t *testing.T) {
	// Beyond determinism, pin the counters to coarse physical bounds so
	// a unit-scale regression (e.g. double-counting flits) cannot hide.
	for _, g := range goldenCases() {
		s := New(g.cfg)
		s.Run(g.cycles)
		m := s.Metrics()
		// Flit conservation at any instant: ejected <= injected.
		if m.Net.FlitsEjected > m.Net.FlitsInjected {
			t.Errorf("%s: ejected %d > injected %d", g.name, m.Net.FlitsEjected, m.Net.FlitsInjected)
		}
		// Each miss costs ReqFlits+RepFlits = 4 flits; injected flits
		// cannot exceed that (local misses send none).
		if m.Net.FlitsInjected > m.Misses*4 {
			t.Errorf("%s: %d flits for %d misses (> 4/miss)", g.name, m.Net.FlitsInjected, m.Misses)
		}
		// IPC per node bounded by issue width.
		for i, ipc := range m.IPC {
			if ipc > 3.0 {
				t.Errorf("%s: node %d IPC %.2f exceeds issue width", g.name, i, ipc)
			}
		}
		// mcf at 16 copies is congested: some starvation must register.
		if m.StarvationRate == 0 {
			t.Errorf("%s: zero starvation in a congested run", g.name)
		}
	}
}
