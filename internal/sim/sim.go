// Package sim is the closed-loop cycle-level system simulator: it wires
// the out-of-order cores, private L1 caches, the shared-L2 address
// mapping, the on-chip network (bufferless BLESS or buffered VC), and a
// congestion controller into one clocked system, and measures the
// application-level and network-level metrics the paper's evaluation
// reports.
//
// The loop per cycle is: step every core (issue/retire; L1 misses
// inject request packets), step the network, drain delivered packets
// (requests schedule an L2 reply after the service latency; replies
// complete the outstanding miss in the requesting core's window), and —
// every Epoch cycles — run the congestion controller on the measured
// per-node starvation rates and IPF values.
//
// Back-pressure is modelled end to end: a congested network delays
// replies, stalls instruction windows, and thereby lowers the presented
// load, the self-throttling property of §3.1.
package sim

import (
	"fmt"

	"nocsim/internal/app"
	"nocsim/internal/cache"
	"nocsim/internal/core"
	"nocsim/internal/cpu"
	"nocsim/internal/noc"
	"nocsim/internal/noc/bless"
	"nocsim/internal/noc/buffered"
	"nocsim/internal/noc/hierring"
	"nocsim/internal/obs"
	"nocsim/internal/par"
	"nocsim/internal/topology"
	"nocsim/internal/trace"
)

// RouterKind selects the network architecture.
type RouterKind int

const (
	// BLESS is the bufferless deflection fabric (the baseline).
	BLESS RouterKind = iota
	// Buffered is the 4-VC/4-flit virtual-channel fabric (§6.3).
	Buffered
	// HierRing is the bufferless hierarchical ring fabric ([21]): local
	// rings of Config.RingGroup nodes joined by one global ring.
	HierRing
)

func (r RouterKind) String() string {
	switch r {
	case Buffered:
		return "buffered"
	case HierRing:
		return "hierring"
	}
	return "bless"
}

// MappingKind selects the L1-miss home-node mapping.
type MappingKind int

const (
	// XORMap is the default per-block XOR interleaving (Table 2).
	XORMap MappingKind = iota
	// ExpMap is §3.2's randomized exponential-locality mapping.
	ExpMap
	// PowMap is the power-law alternative.
	PowMap
	// GroupMap services each node's misses within its thread group
	// (Config.Groups), modelling multithreaded regional traffic (§7).
	GroupMap
)

// ControllerKind selects the congestion-control mechanism.
type ControllerKind int

const (
	// NoControl runs the open baseline.
	NoControl ControllerKind = iota
	// Central is the paper's mechanism (Algorithms 1-3).
	Central
	// StaticUniform throttles every node at Config.StaticRate (§3.1).
	StaticUniform
	// StaticPerNode throttles node i at Config.StaticRates[i] (Fig. 5).
	StaticPerNode
	// Distributed is the §6.6 TCP-like congestion-bit controller.
	Distributed
	// UnawareControl is the application-unaware dynamic ablation.
	UnawareControl
	// LatencyControl is the latency-triggered detection ablation.
	LatencyControl
)

func (c ControllerKind) String() string {
	switch c {
	case Central:
		return "bless-throttling"
	case StaticUniform:
		return "static"
	case StaticPerNode:
		return "static-per-node"
	case Distributed:
		return "distributed"
	case UnawareControl:
		return "unaware"
	case LatencyControl:
		return "latency-triggered"
	}
	return "none"
}

// Config assembles a system. Zero values give the paper's Table 2
// parameters on a 4x4 mesh.
type Config struct {
	// Width and Height are the mesh dimensions; 0 means 4.
	Width, Height int
	// Topo is the topology family (mesh default).
	Topo topology.Kind
	// Router selects the fabric.
	Router RouterKind
	// Apps assigns an application per node; nil entries are idle cores.
	// Length must equal Width*Height.
	Apps []*app.Profile
	// Controller selects the congestion-control mechanism.
	Controller ControllerKind
	// Params tunes the central controller; zero means DefaultParams.
	Params core.Params
	// StaticRate is the uniform rate for StaticUniform.
	StaticRate float64
	// StaticRates are the per-node rates for StaticPerNode.
	StaticRates []float64
	// LatencyThresh is LatencyControl's detection threshold in cycles;
	// 0 means 30.
	LatencyThresh float64

	// Mapping selects the miss-home mapping; MeanHops parameterises the
	// locality mappings (0 means 1.0). Groups assigns each node to a
	// thread group for GroupMap.
	Mapping  MappingKind
	MeanHops float64
	Groups   []int

	// ReqFlits and RepFlits are the packet sizes; 0 means 1 and 3
	// (a 32-byte block is 2 flits at the typical 128-bit link width,
	// plus a header flit).
	ReqFlits, RepFlits int
	// L2Latency is the home-slice service time in cycles; 0 means 6.
	// (The paper's L2 is perfect; the bank access still takes time.)
	L2Latency int64

	// CPU and L1 override Table 2's core and cache parameters.
	CPU cpu.Config
	L1  cache.L1Config
	// PhaseDwellInsns tunes trace phase lengths (trace.Config).
	PhaseDwellInsns int

	// VCs and BufDepth configure the buffered fabric; EjectWidth the
	// bufferless one.
	VCs, BufDepth, EjectWidth int
	// RingGroup is the local-ring size for the HierRing fabric; 0 means
	// 8. Width*Height must be a multiple of it.
	RingGroup int
	// RandomArb replaces Oldest-First deflection arbitration with
	// uniform-random arbitration (ablation; BLESS fabric only).
	RandomArb bool
	// SideBuffer enables MinBD-style minimal buffering in the BLESS
	// fabric: a per-router side buffer of this many flits (0 = off).
	SideBuffer int
	// Adaptive enables locally congestion-aware productive-port routing
	// in the BLESS fabric (§7 "Traffic Engineering").
	Adaptive bool

	// Warmup declares that the run's first Warmup cycles execute under
	// the warmup-normalized configuration (NormalizeWarm): no congestion
	// controller, no observability, no epoch recording. The runner uses
	// it to share one warmup simulation per config prefix and fork grid
	// points from its checkpoint; the simulator itself only validates it
	// when restoring across configurations (see Restore).
	Warmup int64
	// Workers shards the per-cycle node loops; 0 means 1.
	Workers int
	// Seed makes the whole system deterministic.
	Seed uint64
	// Obs configures the observability collectors (zero disables them;
	// disabled collectors cost one nil check per fabric event).
	Obs obs.Options
	// RecordEpochs keeps per-epoch, per-node IPF and starvation samples
	// for distribution plots (Fig. 9, Table 1 variance).
	RecordEpochs bool
	// ControlTraffic, when true, injects the controller's 2n
	// coordination packets into the network as real Control packets.
	ControlTraffic bool
	// Writebacks enables the write-traffic extension: stores dirty L1
	// lines and dirty evictions travel to the victim block's home slice
	// as one-way packets. Off by default (the paper's traffic model is
	// request/reply only). StoreFrac sets the store share of memory
	// references; 0 means 0.3 when Writebacks is on.
	Writebacks bool
	StoreFrac  float64
}

func (c *Config) setDefaults() {
	if c.Width == 0 {
		c.Width = 4
	}
	if c.Height == 0 {
		c.Height = 4
	}
	if c.MeanHops == 0 {
		c.MeanHops = 1
	}
	if c.ReqFlits == 0 {
		c.ReqFlits = 1
	}
	if c.RepFlits == 0 {
		c.RepFlits = 3
	}
	if c.L2Latency == 0 {
		c.L2Latency = 6
	}
	if c.LatencyThresh == 0 {
		c.LatencyThresh = 30
	}
	if c.Params.Epoch == 0 {
		c.Params = core.DefaultParams()
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Writebacks && c.StoreFrac == 0 {
		c.StoreFrac = 0.3
	}
}

// pendingReply is an L2 access in service at a home node.
type pendingReply struct {
	home  int32
	dst   int32
	token uint64
}

// EpochSample is one node's measurements over one controller epoch.
type EpochSample struct {
	Epoch     int64
	Node      int
	IPF       float64
	Sigma     float64
	Throttled float64 // applied rate
}

// Sim is an assembled system.
type Sim struct {
	cfg    Config
	top    *topology.Topology
	net    noc.Network
	cores  []*cpu.Core
	l1s    []*cache.L1
	mapper cache.Mapper

	// pool is the persistent worker pool shared by the node loop and the
	// fabric's phase barriers (never concurrently: Step runs them back to
	// back). nodeFn is the prebuilt shard closure, so Step allocates
	// nothing. Both are nil when Workers <= 1.
	pool   *par.Pool
	nodeFn func(lo, hi, worker int)

	policy      noc.InjectionPolicy
	corePolicy  *core.Policy     // non-nil for Central/Unaware/Latency
	controller  *core.Controller // Central
	unaware     *core.Unaware    // UnawareControl
	latencyCtl  *core.LatencyTriggered
	static      *core.Static      // Static*
	distributed *core.Distributed // Distributed

	cycle      int64
	tokens     []uint64 // per-core miss sequence numbers
	misses     []int64  // per-core cumulative L1 misses sent to the NoC
	selfhit    []int64  // per-core misses serviced by the local slice
	writebacks []int64  // per-core dirty evictions

	// replyWheel[home*wheelLen + (cycle+L2Latency)%wheelLen] holds the
	// L2 accesses of one home node becoming ready at that cycle. Keeping
	// one wheel per node lets core shards schedule local-slice replies
	// without sharing state.
	replyWheel [][]pendingReply
	wheelLen   int64

	// Epoch bookkeeping.
	epochStartRetired []int64
	epochStartMisses  []int64
	epochStats        noc.Stats
	ipfScratch        []float64
	epochs            int64
	controlPackets    int64
	samples           []EpochSample

	// obs owns the observability collectors; nil when Config.Obs
	// disables them all. epochNodes is the decision ledger's per-node
	// scratch, rewritten every epoch before the ledger copies it.
	obs        *obs.Observer
	epochNodes []obs.EpochNode

	// originDigest/originCycle record warm-start provenance for the run
	// manifest: the content digest of the checkpoint this Sim was
	// restored from and the cycle it resumed at. Empty for cold runs.
	// Execution metadata only — never consulted by the simulation.
	originDigest string
	originCycle  int64

	decisions []core.Decision
}

// New assembles a system from cfg.
func New(cfg Config) *Sim {
	cfg.setDefaults()
	top := topology.New(cfg.Topo, cfg.Width, cfg.Height)
	n := top.Nodes()
	if cfg.Apps == nil {
		cfg.Apps = make([]*app.Profile, n)
	}
	if len(cfg.Apps) != n {
		panic(fmt.Sprintf("sim: %d app assignments for %d nodes", len(cfg.Apps), n))
	}

	s := &Sim{
		cfg:               cfg,
		top:               top,
		cores:             make([]*cpu.Core, n),
		l1s:               make([]*cache.L1, n),
		tokens:            make([]uint64, n),
		misses:            make([]int64, n),
		selfhit:           make([]int64, n),
		writebacks:        make([]int64, n),
		epochStartRetired: make([]int64, n),
		epochStartMisses:  make([]int64, n),
		ipfScratch:        make([]float64, n),
	}
	s.wheelLen = cfg.L2Latency + 1
	s.replyWheel = make([][]pendingReply, int64(n)*s.wheelLen)

	if cfg.Workers > 1 {
		s.pool = par.New(cfg.Workers)
		s.nodeFn = func(lo, hi, _ int) {
			for node := lo; node < hi; node++ {
				s.stepNode(node)
			}
		}
	}

	// Observability collectors (nil when disabled).
	active := 0
	for _, a := range cfg.Apps {
		if a != nil {
			active++
		}
	}
	s.obs = obs.New(cfg.Obs, obs.Meta{
		Nodes:        n,
		Width:        top.Width(),
		Height:       top.Height(),
		ActiveNodes:  active,
		FlitsPerMiss: float64(cfg.ReqFlits + cfg.RepFlits),
	})
	if s.obs != nil && s.obs.Epochs != nil {
		s.epochNodes = make([]obs.EpochNode, n)
	}

	// Congestion-control policy.
	switch cfg.Controller {
	case Central:
		s.corePolicy = core.NewPolicy(n, 0)
		s.controller = core.NewController(s.corePolicy, cfg.Params)
		s.policy = s.corePolicy
	case UnawareControl:
		s.corePolicy = core.NewPolicy(n, 0)
		s.unaware = core.NewUnaware(s.corePolicy, cfg.Params, 0.5)
		s.policy = s.corePolicy
	case LatencyControl:
		s.corePolicy = core.NewPolicy(n, 0)
		s.latencyCtl = core.NewLatencyTriggered(s.corePolicy, cfg.Params, cfg.LatencyThresh)
		s.policy = s.corePolicy
	case StaticUniform:
		s.static = core.NewStatic(n)
		s.static.SetAll(cfg.StaticRate)
		s.policy = s.static
	case StaticPerNode:
		s.static = core.NewStatic(n)
		if len(cfg.StaticRates) != n {
			panic("sim: StaticPerNode needs one rate per node")
		}
		for i, r := range cfg.StaticRates {
			s.static.SetNode(i, r)
		}
		s.policy = s.static
	case Distributed:
		s.distributed = core.NewDistributed(n)
		s.policy = s.distributed
	default:
		s.policy = noc.Open{}
	}

	// Network fabric.
	switch cfg.Router {
	case Buffered:
		s.net = buffered.New(buffered.Config{
			Topology:   top,
			VCs:        cfg.VCs,
			BufDepth:   cfg.BufDepth,
			EjectWidth: cfg.EjectWidth,
			Policy:     s.policy,
			Workers:    cfg.Workers,
			Pool:       s.pool,
			Probe:      s.obs.Probe(),
		})
	case HierRing:
		s.net = hierring.New(hierring.Config{
			Nodes:     n,
			GroupSize: cfg.RingGroup,
			Policy:    s.policy,
			Workers:   cfg.Workers,
			Pool:      s.pool,
			Probe:     s.obs.Probe(),
		})
	default:
		arb := bless.OldestFirst
		if cfg.RandomArb {
			arb = bless.Random
		}
		s.net = bless.New(bless.Config{
			Topology:   top,
			EjectWidth: cfg.EjectWidth,
			Policy:     s.policy,
			Arb:        arb,
			SideBuffer: cfg.SideBuffer,
			Adaptive:   cfg.Adaptive,
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
			Pool:       s.pool,
			Probe:      s.obs.Probe(),
		})
	}

	// Address mapping.
	blockBytes := cfg.L1.BlockBytes
	if blockBytes == 0 {
		blockBytes = 32
	}
	switch cfg.Mapping {
	case GroupMap:
		if len(cfg.Groups) != n {
			panic("sim: GroupMap needs one group id per node")
		}
		s.mapper = cache.NewGrouped(cfg.Groups, cfg.Seed)
	case ExpMap:
		s.mapper = cache.NewLocality(cache.LocalityConfig{
			Topology: top, Kind: cache.Exponential,
			MeanHops: cfg.MeanHops, BlockBytes: blockBytes, Seed: cfg.Seed,
		})
	case PowMap:
		s.mapper = cache.NewLocality(cache.LocalityConfig{
			Topology: top, Kind: cache.PowerLaw,
			MeanHops: cfg.MeanHops, BlockBytes: blockBytes, Seed: cfg.Seed,
		})
	default:
		s.mapper = cache.NewXORInterleave(n, blockBytes)
	}

	// Cores and caches.
	fpm := cfg.ReqFlits + cfg.RepFlits
	for i := 0; i < n; i++ {
		if cfg.Apps[i] == nil {
			continue
		}
		s.l1s[i] = cache.NewL1(cfg.L1)
		gen := trace.New(trace.Config{
			Profile:         *cfg.Apps[i],
			FlitsPerMiss:    fpm,
			BlockBytes:      blockBytes,
			PhaseDwellInsns: cfg.PhaseDwellInsns,
			StoreFrac:       cfg.StoreFrac,
			AddrBase:        uint64(i) << 40,
			Seed:            cfg.Seed ^ uint64(i)*0x9e3779b97f4a7c15,
		})
		// Pre-warm the resident working set so measurements start
		// without cold-miss noise (the paper's long runs amortise
		// warmup; our scaled runs must not be polluted by it).
		for _, a := range gen.HotAddresses() {
			s.l1s[i].Warm(a)
		}
		s.cores[i] = cpu.New(i, cfg.CPU, gen, (*backend)(s))
	}
	return s
}

// backend adapts the Sim to cpu.MemBackend without exposing Access on
// Sim's public API.
type backend Sim

// Access implements cpu.MemBackend: look up the private L1; on a miss,
// send a request packet to the block's home slice (or service it
// locally when the mapping picks the requester's own slice). Dirty
// evictions emit one-way writeback packets when enabled.
func (b *backend) Access(coreID int, addr uint64, store bool) (bool, uint64) {
	s := (*Sim)(b)
	hit, wbAddr, wb := s.l1s[coreID].AccessRW(addr, store && s.cfg.Writebacks)
	if wb && s.cfg.Writebacks {
		home := s.mapper.Home(coreID, wbAddr)
		s.writebacks[coreID]++
		if home != coreID {
			s.net.NIC(coreID).Send(home, noc.Writeback, 0, s.cfg.RepFlits, s.cycle)
		}
	}
	if hit {
		return true, 0
	}
	s.tokens[coreID]++
	token := uint64(coreID)<<32 | (s.tokens[coreID] & 0xffffffff)
	home := s.mapper.Home(coreID, addr)
	s.misses[coreID]++
	if home == coreID {
		// Local slice: no network traversal, only the L2 service time.
		s.selfhit[coreID]++
		s.scheduleReply(home, coreID, token)
		return false, token
	}
	s.net.NIC(coreID).Send(home, noc.Request, token, s.cfg.ReqFlits, s.cycle)
	return false, token
}

func (s *Sim) scheduleReply(home, dst int, token uint64) {
	slot := int64(home)*s.wheelLen + (s.cycle+s.cfg.L2Latency)%s.wheelLen
	s.replyWheel[slot] = append(s.replyWheel[slot], pendingReply{
		home: int32(home), dst: int32(dst), token: token,
	})
}

// Cycle returns the current cycle.
func (s *Sim) Cycle() int64 { return s.cycle }

// Network returns the underlying fabric.
func (s *Sim) Network() noc.Network { return s.net }

// Topology returns the mesh.
func (s *Sim) Topology() *topology.Topology { return s.top }

// Core returns node i's core, or nil for idle nodes.
func (s *Sim) Core(i int) *cpu.Core { return s.cores[i] }

// Decisions returns the central controller's per-epoch decisions.
func (s *Sim) Decisions() []core.Decision { return s.decisions }

// Samples returns per-epoch per-node samples (RecordEpochs only).
func (s *Sim) Samples() []EpochSample { return s.samples }

// ControlPackets returns the cumulative coordination cost in packets.
func (s *Sim) ControlPackets() int64 { return s.controlPackets }

// Step advances the system one cycle.
func (s *Sim) Step() {
	// 1+2. Per node: dispatch the L2 replies finishing service this
	// cycle, then step the core. Replies dispatched at a node touch only
	// that node's NIC; local-slice completions touch only that node's
	// core (home == dst there), so nodes can be stepped in parallel.
	n := s.top.Nodes()
	if s.pool != nil && n >= 256 {
		s.pool.Run(n, s.nodeFn)
	} else {
		for node := 0; node < n; node++ {
			s.stepNode(node)
		}
	}

	// 3. Step the network.
	s.net.Step()

	// 4. Drain deliveries.
	for node := 0; node < n; node++ {
		delivered := s.net.NIC(node).Delivered()
		if len(delivered) == 0 {
			continue
		}
		for _, p := range delivered {
			switch p.Kind {
			case noc.Request:
				s.scheduleReply(node, int(p.Token>>32), p.Token)
			case noc.Reply:
				s.cores[node].Complete(p.Token, s.cycle)
			}
			if p.CongBit && s.distributed != nil {
				s.distributed.OnSignal(node)
			}
		}
	}

	s.cycle++

	// 5. Controller epoch. An active-set fabric defers per-cycle policy
	// observation for idle nodes; flush that debt so the epoch reads
	// starvation windows as if no node had been skipped.
	if s.cycle%s.cfg.Params.Epoch == 0 {
		if ps, ok := s.net.(noc.PolicySyncer); ok {
			ps.SyncPolicy()
		}
		s.runEpoch()
	}

	// 6. Interval sample, fed from the merged (shard-count invariant)
	// counters on the stepping goroutine.
	if s.obs != nil && s.obs.Sampler != nil && s.cycle%s.obs.Sampler.Interval == 0 {
		s.recordSample()
	}
}

// recordSample closes one observability window: cumulative fabric
// counters plus cumulative retired instructions and network misses.
func (s *Sim) recordSample() {
	var retired, misses int64
	for i, c := range s.cores {
		if c == nil {
			continue
		}
		retired += c.Retired()
		misses += s.misses[i]
	}
	s.obs.Sampler.Record(s.cycle, s.net.Stats(), retired, misses)
}

// Obs returns the observability collectors, or nil when disabled.
func (s *Sim) Obs() *obs.Observer { return s.obs }

// stepNode dispatches node's ready L2 replies and steps its core. It
// touches only node-local state (see Step), so distinct nodes may run
// concurrently.
func (s *Sim) stepNode(node int) {
	slot := int64(node)*s.wheelLen + s.cycle%s.wheelLen
	pending := s.replyWheel[slot]
	if len(pending) > 0 {
		for _, r := range pending {
			if r.home == r.dst {
				// Local-slice service: complete directly.
				s.cores[r.dst].Complete(r.token, s.cycle)
				continue
			}
			s.net.NIC(int(r.home)).Send(int(r.dst), noc.Reply, r.token, s.cfg.RepFlits, s.cycle)
		}
		s.replyWheel[slot] = pending[:0]
	}
	if c := s.cores[node]; c != nil {
		c.Step(s.cycle)
	}
}

// Close releases the Sim's worker pool and the fabric's own, if any.
// The pool's finalizer would eventually reclaim the goroutines, but
// long-lived processes stepping many Sims (the experiment runner, the
// benchmarks) should release them promptly.
func (s *Sim) Close() {
	if c, ok := s.net.(interface{ Close() }); ok {
		c.Close()
	}
	if s.pool != nil {
		s.pool.Close()
	}
}

// runEpoch measures per-node IPF over the elapsed epoch and invokes the
// configured controller.
func (s *Sim) runEpoch() {
	s.epochs++
	n := s.top.Nodes()
	fpm := float64(s.cfg.ReqFlits + s.cfg.RepFlits)
	var ledger *obs.EpochLedger
	if s.obs != nil {
		ledger = s.obs.Epochs
	}
	for i := 0; i < n; i++ {
		if ledger != nil {
			s.epochNodes[i] = obs.EpochNode{Node: int32(i)}
		}
		if s.cores[i] == nil {
			s.ipfScratch[i] = 0 // sanitised to IPFCap by the controller
			continue
		}
		dI := s.cores[i].Retired() - s.epochStartRetired[i]
		dM := s.misses[i] - s.epochStartMisses[i]
		s.epochStartRetired[i] = s.cores[i].Retired()
		s.epochStartMisses[i] = s.misses[i]
		if dM == 0 {
			s.ipfScratch[i] = 0
		} else {
			s.ipfScratch[i] = float64(dI) / (float64(dM) * fpm)
		}
		if ledger != nil {
			nd := &s.epochNodes[i]
			nd.IPF = s.ipfScratch[i]
			if dI > 0 {
				nd.MPKI = float64(dM) * 1000 / float64(dI)
			}
		}
	}

	var d core.Decision
	ran := true
	switch {
	case s.controller != nil:
		d = s.controller.Update(s.ipfScratch)
	case s.unaware != nil:
		d = s.unaware.Update(s.ipfScratch)
	case s.latencyCtl != nil:
		cur := s.net.Stats()
		delta := cur.Sub(s.epochStats)
		s.epochStats = cur
		d = s.latencyCtl.Update(delta.AvgNetLatency(), s.ipfScratch)
	case s.distributed != nil:
		s.distributed.Epoch()
		ran = false
	default:
		ran = false
	}
	if ran {
		s.controlPackets += int64(d.ControlPackets)
		if s.cfg.ControlTraffic && s.corePolicy != nil {
			s.injectControlTraffic()
		}
		// Rates aliases controller scratch; copy before storing.
		cp := d
		cp.Rates = append([]float64(nil), d.Rates...)
		s.decisions = append(s.decisions, cp)
	}

	if s.cfg.RecordEpochs {
		for i := 0; i < n; i++ {
			if s.cores[i] == nil {
				continue
			}
			sigma, rate := s.policyRates(i)
			s.samples = append(s.samples, EpochSample{
				Epoch: s.epochs, Node: i, IPF: s.ipfScratch[i],
				Sigma: sigma, Throttled: rate,
			})
		}
	}

	// Decision ledger: the epoch's evidence and verdict, recorded after
	// the controller applied its rates so the rows show what each node
	// runs under next epoch.
	if ledger != nil {
		for i := 0; i < n; i++ {
			if s.cores[i] == nil {
				continue
			}
			sigma, rate := s.policyRates(i)
			s.epochNodes[i].Sigma = sigma
			s.epochNodes[i].Rate = rate
		}
		ledger.Record(s.epochs, s.cycle, s.net.Stats(), obs.EpochDecision{
			Ran: ran, Congested: d.Congested, MeanIPF: d.MeanIPF,
			ThrottledNodes: d.ThrottledNodes, ControlPackets: d.ControlPackets,
		}, s.epochNodes)
	}
}

// policyRates reads node i's measured starvation rate (sigma) and
// applied throttle rate from whichever injection policy the
// configuration runs; (0, 0) for open injection.
func (s *Sim) policyRates(i int) (sigma, rate float64) {
	switch {
	case s.corePolicy != nil:
		return s.corePolicy.M.Rate(i), s.corePolicy.T.Rate(i)
	case s.static != nil:
		return s.static.M.Rate(i), s.static.T.Rate(i)
	case s.distributed != nil:
		return s.distributed.M.Rate(i), s.distributed.Rate(i)
	}
	return 0, 0
}

// SetOrigin records warm-start provenance — the content digest of the
// checkpoint this simulation was restored from and the cycle it
// resumed at — for the run manifest. It never affects simulation.
func (s *Sim) SetOrigin(digest string, cycle int64) {
	s.originDigest = digest
	s.originCycle = cycle
}

// Origin returns the provenance recorded by SetOrigin; an empty digest
// means the run was simulated cold from cycle 0.
func (s *Sim) Origin() (digest string, cycle int64) {
	return s.originDigest, s.originCycle
}

// injectControlTraffic sends the epoch's 2n coordination packets: one
// single-flit report from every node to the controller at node 0 and
// one rate-setting back.
func (s *Sim) injectControlTraffic() {
	n := s.top.Nodes()
	for i := 1; i < n; i++ {
		s.net.NIC(i).Send(0, noc.Control, 0, 1, s.cycle)
		s.net.NIC(0).Send(i, noc.Control, 0, 1, s.cycle)
	}
}

// Run advances the system by the given number of cycles.
func (s *Sim) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		s.Step()
	}
}
