package sim

import "nocsim/internal/noc"

// Metrics summarises a run at both the network layer and the
// application layer — the distinction the paper insists on (§3.1:
// network-layer effects only matter when they affect the cores).
type Metrics struct {
	// Cycles is the simulated cycle count.
	Cycles int64
	// Nodes is the mesh size; ActiveNodes counts nodes running an app.
	Nodes, ActiveNodes int

	// Retired is the per-node retired instruction count; IPC the
	// per-node instructions per cycle.
	Retired []int64
	IPC     []float64
	// SystemThroughput is the sum of per-node IPC (§3.1's definition).
	SystemThroughput float64
	// ThroughputPerNode is SystemThroughput / ActiveNodes: the
	// "IPC/Node" y-axis of Figs. 3(c), 4 and 13.
	ThroughputPerNode float64

	// IPF is the per-node cumulative instructions-per-flit measurement.
	IPF []float64
	// Misses and LocalMisses count L1 misses (total, and those serviced
	// by the node's own slice without network traversal). Writebacks
	// counts dirty evictions (non-zero only with Config.Writebacks).
	Misses, LocalMisses, Writebacks int64

	// Net are the fabric counters over the run.
	Net noc.Stats
	// NetUtilization, AvgNetLatency and StarvationRate are the derived
	// network metrics the figures plot.
	NetUtilization float64
	AvgNetLatency  float64
	StarvationRate float64

	// ControlPackets is the coordination overhead.
	ControlPackets int64
}

// Metrics computes the summary for everything simulated so far.
func (s *Sim) Metrics() Metrics {
	n := s.top.Nodes()
	m := Metrics{
		Cycles:         s.cycle,
		Nodes:          n,
		Retired:        make([]int64, n),
		IPC:            make([]float64, n),
		IPF:            make([]float64, n),
		Net:            s.net.Stats(),
		ControlPackets: s.controlPackets,
	}
	fpm := float64(s.cfg.ReqFlits + s.cfg.RepFlits)
	for i := 0; i < n; i++ {
		if s.cores[i] == nil {
			continue
		}
		m.ActiveNodes++
		m.Retired[i] = s.cores[i].Retired()
		if s.cycle > 0 {
			m.IPC[i] = float64(m.Retired[i]) / float64(s.cycle)
		}
		m.SystemThroughput += m.IPC[i]
		if s.misses[i] > 0 {
			m.IPF[i] = float64(m.Retired[i]) / (float64(s.misses[i]) * fpm)
		}
		m.Misses += s.misses[i]
		m.LocalMisses += s.selfhit[i]
		m.Writebacks += s.writebacks[i]
	}
	if m.ActiveNodes > 0 {
		m.ThroughputPerNode = m.SystemThroughput / float64(m.ActiveNodes)
	}
	m.NetUtilization = m.Net.Utilization()
	m.AvgNetLatency = m.Net.AvgNetLatency()
	m.StarvationRate = m.Net.StarvationRate(m.ActiveNodes)
	return m
}

// WeightedSpeedup computes WS = sum_i IPC_shared[i] / IPC_alone[i]
// (§6.2), given the alone-run IPCs for the same node assignment. Idle
// nodes are skipped.
func WeightedSpeedup(shared, alone []float64) float64 {
	ws := 0.0
	for i := range shared {
		if alone[i] > 0 {
			ws += shared[i] / alone[i]
		}
	}
	return ws
}
