// Package plot renders (x, y) series as ASCII scatter charts for the
// terminal, so cmd/experiments can show a figure's shape — crossovers,
// saturation knees, scaling trends — without leaving the shell.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named point set.
type Series struct {
	Name   string
	Points [][2]float64 // (x, y)
}

// markers label up to eight overlaid series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Config sets the canvas geometry.
type Config struct {
	// Width and Height are the plot area in characters; 0 means 64x20.
	Width, Height int
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// LogX plots x on a log10 scale (useful for core-count sweeps).
	LogX bool
}

// Render draws the series onto w.
func Render(w io.Writer, cfg Config, series ...Series) error {
	width, height := cfg.Width, cfg.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}

	// Bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range series {
		for _, p := range s.Points {
			x := p[0]
			if cfg.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
			n++
		}
	}
	if n == 0 {
		_, err := fmt.Fprintln(w, "(no points)")
		return err
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for _, p := range s.Points {
			x := p[0]
			if cfg.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			cx := int((x - minX) / (maxX - minX) * float64(width-1))
			cy := int((p[1] - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - cy
			if grid[row][cx] != ' ' && grid[row][cx] != mark {
				grid[row][cx] = '?'
			} else {
				grid[row][cx] = mark
			}
		}
	}

	// Legend.
	for si, s := range series {
		if _, err := fmt.Fprintf(w, "  %c %s\n", markers[si%len(markers)], s.Name); err != nil {
			return err
		}
	}

	// Canvas with a y-axis gutter.
	for i, row := range grid {
		label := "         "
		switch i {
		case 0:
			label = fmt.Sprintf("%8.3g ", maxY)
		case height - 1:
			label = fmt.Sprintf("%8.3g ", minY)
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 9), strings.Repeat("-", width)); err != nil {
		return err
	}
	lo, hi := minX, maxX
	if cfg.LogX {
		lo, hi = math.Pow(10, minX), math.Pow(10, maxX)
	}
	xAxis := fmt.Sprintf("%-10.4g%s%10.4g", lo, strings.Repeat(" ", max(1, width-20)), hi)
	if _, err := fmt.Fprintf(w, "%s %s\n", strings.Repeat(" ", 9), xAxis); err != nil {
		return err
	}
	if cfg.XLabel != "" || cfg.YLabel != "" {
		if _, err := fmt.Fprintf(w, "%s x: %s   y: %s\n",
			strings.Repeat(" ", 9), cfg.XLabel, cfg.YLabel); err != nil {
			return err
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
