package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, Config{Width: 40, Height: 10, XLabel: "load", YLabel: "latency"},
		Series{Name: "a", Points: [][2]float64{{0, 0}, {1, 1}, {2, 4}}},
		Series{Name: "b", Points: [][2]float64{{0, 4}, {2, 0}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"* a", "o b", "x: load", "y: latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Both markers must appear in the canvas.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("markers missing from canvas")
	}
}

func TestRenderEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, Config{}, Series{Name: "empty"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no points") {
		t.Error("empty render should say so")
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	var buf bytes.Buffer
	// All points identical: must not divide by zero.
	err := Render(&buf, Config{Width: 20, Height: 5},
		Series{Name: "flat", Points: [][2]float64{{1, 1}, {1, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Error("degenerate plot lost its point")
	}
}

func TestRenderLogX(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, Config{Width: 40, Height: 8, LogX: true},
		Series{Name: "scale", Points: [][2]float64{{16, 1}, {256, 2}, {4096, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Log-x axis labels should show the original values.
	if !strings.Contains(out, "16") || !strings.Contains(out, "4096") {
		t.Errorf("log axis labels missing:\n%s", out)
	}
	// Points should be roughly evenly spaced: the middle point's column
	// near the canvas centre. Find rows containing '*'.
	var cols []int
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			if j := strings.IndexByte(line[i:], '*'); j > 0 {
				cols = append(cols, j)
			}
		}
	}
	if len(cols) != 3 {
		t.Fatalf("found %d plotted points, want 3", len(cols))
	}
}

func TestRenderLogXSkipsNonPositive(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, Config{LogX: true},
		Series{Name: "bad", Points: [][2]float64{{0, 1}, {-5, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no points") {
		t.Error("non-positive x values must be skipped under LogX")
	}
}

func TestCollisionMarker(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, Config{Width: 10, Height: 3},
		Series{Name: "a", Points: [][2]float64{{0, 0}, {1, 1}}},
		Series{Name: "b", Points: [][2]float64{{0, 0}, {1, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "?") {
		t.Error("overlapping points from different series should render '?'")
	}
}
