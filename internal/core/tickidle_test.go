package core

import (
	"testing"

	"nocsim/internal/rng"
)

// TestTickIdleEquivalence pins the active-set contract: TickIdle(n, k)
// must leave the Monitor in exactly the state k individual
// Tick(n, false) calls produce — bits, sum, and cursor — for every
// interesting k, including wrap-around and whole-window jumps, from
// windows seeded with a deterministic starvation pattern.
func TestTickIdleEquivalence(t *testing.T) {
	const window = 128
	src := rng.New(7)
	for _, k := range []int64{1, 3, 63, 64, 65, 127, 128, 129, 500, 1_000_000} {
		for trial := 0; trial < 8; trial++ {
			a := NewMonitor(2, window)
			b := NewMonitor(2, window)
			// Seed both monitors identically, leaving the cursor at a
			// trial-dependent phase.
			seed := 20*trial + 1
			for i := 0; i < seed; i++ {
				starved := src.Bool(0.4)
				a.Tick(1, starved)
				b.Tick(1, starved)
			}
			for i := int64(0); i < k; i++ {
				a.Tick(1, false)
			}
			b.TickIdle(1, k)
			if a.Rate(1) != b.Rate(1) {
				t.Fatalf("k=%d trial=%d: rate %v (ticked) != %v (idle)", k, trial, a.Rate(1), b.Rate(1))
			}
			if a.pos[1] != b.pos[1] {
				t.Fatalf("k=%d trial=%d: pos %d != %d", k, trial, a.pos[1], b.pos[1])
			}
			for w := 0; w < a.words; w++ {
				if a.bits[1*a.words+w] != b.bits[1*b.words+w] {
					t.Fatalf("k=%d trial=%d: bits word %d differ", k, trial, w)
				}
			}
			// Node 0 was never touched and must stay zeroed.
			if b.Rate(0) != 0 || b.pos[0] != 0 {
				t.Fatalf("k=%d: TickIdle leaked into another node", k)
			}
		}
	}
}
