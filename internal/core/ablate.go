package core

import "math"

// This file holds the ablation controllers benchmarked against the full
// mechanism (see DESIGN.md §4). Each removes exactly one design choice:
// Unaware removes application awareness (whom to throttle), and
// LatencyTriggered removes the starvation signal (when to throttle).

// Unaware is the application-unaware ablation: detection is identical
// to the full controller (starvation thresholds, Equation 1), but when
// the network is congested every node is throttled at one homogeneous
// rate, as a traditional network would. §4 predicts — and the ablation
// benchmark confirms — that this forgoes most of the gain because
// throttling cache-friendly applications hurts them without relieving
// congestion.
type Unaware struct {
	policy *Policy
	params Params
	// Rate is the homogeneous throttling rate applied when congested.
	Rate float64
}

// NewUnaware builds the unaware controller; rate is the homogeneous
// throttling rate (the §3.1 static sweep peaks near 0.4–0.6).
func NewUnaware(policy *Policy, params Params, rate float64) *Unaware {
	return &Unaware{policy: policy, params: params, Rate: rate}
}

// Update applies one epoch: same congestion detection as Algorithm 1,
// homogeneous response.
func (u *Unaware) Update(ipf []float64) Decision {
	n := u.policy.T.Nodes()
	congested := false
	for i := 0; i < n; i++ {
		v := ipf[i]
		if !(v > 0) {
			v = u.params.IPFCap
		}
		if u.policy.M.Rate(i) > u.params.StarveThreshold(v) {
			congested = true
			break
		}
	}
	d := Decision{Congested: congested, ControlPackets: 2 * n}
	r := 0.0
	if congested {
		r = u.Rate
		d.ThrottledNodes = n
	}
	for i := 0; i < n; i++ {
		u.policy.T.SetRate(i, r)
	}
	return d
}

// LatencyTriggered is the latency-signal ablation: it throttles the
// same nodes at the same rates as Algorithm 1, but detects congestion
// from average in-network latency instead of starvation. §3.1 shows
// network latency stays comparatively flat in a bufferless NoC even
// under heavy congestion, so this detector reacts late or not at all.
type LatencyTriggered struct {
	policy *Policy
	params Params
	// LatencyThresh is the average per-flit network latency (cycles)
	// above which the network is declared congested.
	LatencyThresh float64
	rates         []float64
}

// NewLatencyTriggered builds the latency-triggered controller.
func NewLatencyTriggered(policy *Policy, params Params, thresh float64) *LatencyTriggered {
	return &LatencyTriggered{
		policy:        policy,
		params:        params,
		LatencyThresh: thresh,
		rates:         make([]float64, policy.T.Nodes()),
	}
}

// Update applies one epoch given the epoch's mean network latency and
// per-node IPF readings.
func (l *LatencyTriggered) Update(avgNetLatency float64, ipf []float64) Decision {
	n := l.policy.T.Nodes()
	congested := avgNetLatency > l.LatencyThresh
	sum := 0.0
	for i := 0; i < n; i++ {
		v := ipf[i]
		if !(v > 0) || math.IsNaN(v) {
			v = l.params.IPFCap
		}
		l.rates[i] = v
		sum += v
	}
	mean := sum / float64(n)
	d := Decision{Congested: congested, MeanIPF: mean, ControlPackets: 2 * n}
	for i := 0; i < n; i++ {
		r := 0.0
		if congested && l.rates[i] < mean {
			r = l.params.ThrottleRate(l.rates[i])
		}
		l.rates[i] = r
		l.policy.T.SetRate(i, r)
		if r > 0 {
			d.ThrottledNodes++
		}
	}
	d.Rates = l.rates
	return d
}
