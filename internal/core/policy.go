package core

// Policy bundles the per-node hardware instruments — starvation Monitor
// and injection Throttler — into a noc.InjectionPolicy. It is the
// mechanism the centrally-coordinated Controller drives; it never marks
// congestion bits (that is the distributed variant's tool).
type Policy struct {
	M *Monitor
	T *Throttler
}

// NewPolicy creates the hardware-side policy for n nodes.
func NewPolicy(n, window int) *Policy {
	return &Policy{M: NewMonitor(n, window), T: NewThrottler(n)}
}

// Allow consults Algorithm 3's deterministic gate.
func (p *Policy) Allow(node int) bool { return p.T.Allow(node) }

// Tick feeds Algorithm 2's starvation window: a starved cycle is one
// in which the node wanted to inject but the network refused (§3.1).
// Cycles blocked by the node's own throttle are voluntary restraint and
// do not count — otherwise the controller would latch on through its
// own throttling and Fig. 9's starvation reduction would invert.
func (p *Policy) Tick(node int, wanted, injected, throttled bool) {
	p.M.Tick(node, wanted && !injected && !throttled)
}

// TickIdle fast-forwards the starvation window over cycles the fabric
// skipped the node as idle (an idle node is never starved); it
// implements noc.IdleTicker, which lets active-set fabrics skip nodes
// under this policy.
func (p *Policy) TickIdle(node int, cycles int64) { p.M.TickIdle(node, cycles) }

// MarkCongested is always false for the central mechanism.
func (p *Policy) MarkCongested(int) bool { return false }
