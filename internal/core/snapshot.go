package core

import "nocsim/internal/snap"

// Checkpoint codec for the congestion-control mechanism. The hardware
// instruments (Monitor windows, Throttler counters) and the distributed
// controller's AIMD state are real dynamic state and are encoded; the
// tuning constants are construction inputs and the central controller's
// rates buffer is scratch that every Update fully rewrites before it
// reads.

func init() {
	snap.Cover(Monitor{}, snap.Coverage{
		Serialized: []string{"bits", "sums", "pos"},
		Waived: map[string]string{
			"window": "construction: W is config-derived",
			"words":  "construction: derived from window",
		},
	})
	snap.Cover(Throttler{}, snap.Coverage{
		Serialized: []string{"count", "thresh"},
	})
	snap.Cover(Policy{}, snap.Coverage{
		Serialized: []string{"M", "T"},
	})
	snap.Cover(Static{}, snap.Coverage{
		Serialized: []string{"M", "T"},
	})
	snap.Cover(Distributed{}, snap.Coverage{
		Serialized: []string{"M", "T", "rates", "signaled", "signals"},
		Waived: map[string]string{
			"SigmaThresh": "config: backoff constant set at construction",
			"Increase":    "config: backoff constant set at construction",
			"Step":        "config: backoff constant set at construction",
			"Decay":       "config: backoff constant set at construction",
			"MaxRate":     "config: backoff constant set at construction",
		},
	})
	snap.Cover(Controller{}, snap.Coverage{
		Serialized: []string{"epochs", "decisions"},
		Waived: map[string]string{
			"params": "config: Params is construction input",
			"policy": "construction: wired to the restored Policy, which owns the state",
			"rates":  "scratch: every Update overwrites all elements before any read",
		},
	})
	snap.Cover(Unaware{}, snap.Coverage{
		Waived: map[string]string{
			"policy": "construction: wired to the restored Policy, which owns the state",
			"params": "config: Params is construction input",
			"Rate":   "config: homogeneous rate set at construction",
		},
	})
	snap.Cover(LatencyTriggered{}, snap.Coverage{
		Waived: map[string]string{
			"policy":        "construction: wired to the restored Policy, which owns the state",
			"params":        "config: Params is construction input",
			"LatencyThresh": "config: threshold set at construction",
			"rates":         "scratch: every Update overwrites all elements before any read",
		},
	})
	snap.Cover(Params{}, snap.Coverage{
		Waived: map[string]string{
			"AlphaStarve": "config: tuning constant",
			"BetaStarve":  "config: tuning constant",
			"GammaStarve": "config: tuning constant",
			"AlphaThrot":  "config: tuning constant",
			"BetaThrot":   "config: tuning constant",
			"GammaThrot":  "config: tuning constant",
			"Epoch":       "config: tuning constant",
			"IPFCap":      "config: tuning constant",
			"MinSigma":    "config: tuning constant",
		},
	})
	snap.Cover(Decision{}, snap.Coverage{
		Serialized: []string{
			"Congested", "MeanIPF", "Rates", "ThrottledNodes", "ControlPackets",
		},
	})
}

const (
	tagMonitor     = 0x14
	tagThrottler   = 0x15
	tagDistributed = 0x16
)

// Snapshot encodes the starvation windows of every node.
func (m *Monitor) Snapshot(w *snap.Writer) {
	w.Tag(tagMonitor)
	w.U32(uint32(len(m.sums)))
	w.U32(uint32(m.words))
	for _, b := range m.bits {
		w.U64(b)
	}
	for _, s := range m.sums {
		w.I32(s)
	}
	for _, p := range m.pos {
		w.I32(p)
	}
}

// Restore overlays windows captured by Snapshot onto a monitor with
// the same node count and window size.
func (m *Monitor) Restore(r *snap.Reader) {
	r.Expect(tagMonitor)
	n := int(r.U32())
	words := int(r.U32())
	if n != len(m.sums) || words != m.words {
		r.Failf("monitor shape %d nodes x %d words, want %d x %d",
			n, words, len(m.sums), m.words)
		return
	}
	for i := range m.bits {
		m.bits[i] = r.U64()
	}
	for i := range m.sums {
		m.sums[i] = r.I32()
	}
	for i := range m.pos {
		m.pos[i] = r.I32()
	}
}

// Snapshot encodes the injection counters and programmed rates.
func (t *Throttler) Snapshot(w *snap.Writer) {
	w.Tag(tagThrottler)
	w.U32(uint32(len(t.count)))
	for _, c := range t.count {
		w.I32(c)
	}
	for _, th := range t.thresh {
		w.I32(th)
	}
}

// Restore overlays counters captured by Snapshot onto a throttler with
// the same node count.
func (t *Throttler) Restore(r *snap.Reader) {
	r.Expect(tagThrottler)
	if n := int(r.U32()); n != len(t.count) {
		r.Failf("throttler nodes %d, want %d", n, len(t.count))
		return
	}
	for i := range t.count {
		t.count[i] = r.I32()
	}
	for i := range t.thresh {
		t.thresh[i] = r.I32()
	}
}

// Snapshot encodes the policy's monitor and throttler.
func (p *Policy) Snapshot(w *snap.Writer) {
	p.M.Snapshot(w)
	p.T.Snapshot(w)
}

// Restore overlays policy state captured by Snapshot.
func (p *Policy) Restore(r *snap.Reader) {
	p.M.Restore(r)
	p.T.Restore(r)
}

// Snapshot encodes the static policy's monitor and throttler.
func (s *Static) Snapshot(w *snap.Writer) {
	s.M.Snapshot(w)
	s.T.Snapshot(w)
}

// Restore overlays static-policy state captured by Snapshot.
func (s *Static) Restore(r *snap.Reader) {
	s.M.Restore(r)
	s.T.Restore(r)
}

// Snapshot encodes the distributed controller's instruments and AIMD
// state.
func (d *Distributed) Snapshot(w *snap.Writer) {
	d.M.Snapshot(w)
	d.T.Snapshot(w)
	w.Tag(tagDistributed)
	w.U32(uint32(len(d.rates)))
	for _, v := range d.rates {
		w.F64(v)
	}
	for _, s := range d.signaled {
		w.Bool(s)
	}
	w.I64(d.signals)
}

// Restore overlays distributed-controller state captured by Snapshot.
func (d *Distributed) Restore(r *snap.Reader) {
	d.M.Restore(r)
	d.T.Restore(r)
	r.Expect(tagDistributed)
	if n := int(r.U32()); n != len(d.rates) {
		r.Failf("distributed nodes %d, want %d", n, len(d.rates))
		return
	}
	for i := range d.rates {
		d.rates[i] = r.F64()
	}
	for i := range d.signaled {
		d.signaled[i] = r.Bool()
	}
	d.signals = r.I64()
}

// SnapshotEpochs encodes the central controller's epoch counters (its
// only dynamic state; the throttle rates live in the Policy).
func (c *Controller) SnapshotEpochs(w *snap.Writer) {
	w.I64(c.epochs)
	w.I64(c.decisions)
}

// RestoreEpochs overlays epoch counters captured by SnapshotEpochs.
func (c *Controller) RestoreEpochs(r *snap.Reader) {
	c.epochs = r.I64()
	c.decisions = r.I64()
}
