package core

// MaxCount is Algorithm 3's MAX_COUNT: the period, in injection
// opportunities, of the deterministic throttle pattern. 128 keeps the
// hardware to a free-running 7-bit counter and one comparator (§6.5).
const MaxCount = 128

// Throttler is the per-node injection gate of Algorithm 3. For a node
// with throttling rate r, injection is blocked on the first
// round(r*MaxCount) of every MaxCount injection opportunities:
//
//	inj_count <- (inj_count + 1) mod MAX_COUNT
//	allow iff inj_count >= throttle_rate * MAX_COUNT
//
// Allow must be called exactly when the paper's algorithm samples the
// counter: the node is trying to inject this cycle AND the router could
// accept the flit. The fabrics guarantee that call discipline.
//
// Distinct nodes may be gated concurrently.
type Throttler struct {
	count []int32
	// thresh[node] = round(rate*MaxCount); block while count < thresh.
	thresh []int32
}

// NewThrottler creates a Throttler for n nodes with all rates zero.
func NewThrottler(n int) *Throttler {
	return &Throttler{count: make([]int32, n), thresh: make([]int32, n)}
}

// Nodes returns the node count.
func (t *Throttler) Nodes() int { return len(t.count) }

// SetRate sets node's throttling rate in [0,1]: the long-run fraction
// of injection opportunities that will be blocked.
func (t *Throttler) SetRate(node int, r float64) {
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	t.thresh[node] = int32(r*MaxCount + 0.5)
}

// Rate returns node's current throttling rate.
func (t *Throttler) Rate(node int) float64 {
	return float64(t.thresh[node]) / MaxCount
}

// Allow advances node's injection counter and reports whether this
// injection opportunity is permitted.
func (t *Throttler) Allow(node int) bool {
	c := t.count[node] + 1
	if c == MaxCount {
		c = 0
	}
	t.count[node] = c
	return c >= t.thresh[node]
}

// ResetRates zeroes every node's throttling rate.
func (t *Throttler) ResetRates() {
	for i := range t.thresh {
		t.thresh[i] = 0
	}
}
