package core

import "math"

// Params are Algorithm 1's tuning constants. The defaults are the
// paper's empirically chosen values (§6.1); §6.4 sweeps each.
type Params struct {
	// AlphaStarve scales the congestion-detection threshold with the
	// node's network intensity (threshold grows with alpha/IPF so that
	// naturally starving network-intensive applications do not trip
	// detection spuriously).
	AlphaStarve float64
	// BetaStarve is the threshold's lower bound.
	BetaStarve float64
	// GammaStarve is the threshold's upper bound.
	GammaStarve float64
	// AlphaThrot scales throttling rate with network intensity.
	AlphaThrot float64
	// BetaThrot is the minimum applied throttling rate.
	BetaThrot float64
	// GammaThrot caps the throttling rate so intensive applications are
	// never fully starved.
	GammaThrot float64
	// Epoch is T, the controller period in cycles.
	Epoch int64
	// IPFCap bounds measured IPF when a node sent no traffic in an
	// epoch (IPF would be infinite); it only needs to exceed every real
	// application's IPF.
	IPFCap float64
	// MinSigma floors the congestion-detection threshold. The monitor's
	// starvation rate is quantized to 1/W (W=128): for a light
	// application (large IPF) Equation 1's threshold falls below that
	// quantum, so a single starved cycle — measurement noise — would
	// flag the whole network congested and throttle the heavy
	// applications at full rate. Requiring at least two starved cycles
	// per window (1.5/W) filters the noise without touching real
	// detections. 0 means 1.5/128.
	MinSigma float64
}

// DefaultParams returns the paper's §6.1 parameter set: alpha_starve
// 0.4, beta_starve 0.0, gamma_starve 0.7, alpha_throt 0.9, beta_throt
// 0.20, gamma_throt 0.75, T = 100k cycles.
func DefaultParams() Params {
	return Params{
		AlphaStarve: 0.4,
		BetaStarve:  0.0,
		GammaStarve: 0.7,
		AlphaThrot:  0.9,
		BetaThrot:   0.20,
		GammaThrot:  0.75,
		Epoch:       100_000,
		IPFCap:      1e7,
		MinSigma:    1.5 / float64(DefaultWindow),
	}
}

// StarveThreshold returns the congestion-detection threshold for a node
// with the given IPF: min(beta + alpha/IPF, gamma) (Equation 1), floored
// at MinSigma (the monitor's measurement-noise quantum).
func (p Params) StarveThreshold(ipf float64) float64 {
	t := math.Min(p.BetaStarve+p.AlphaStarve/ipf, p.GammaStarve)
	if t < p.MinSigma {
		t = p.MinSigma
	}
	return t
}

// ThrottleRate returns the rate applied to a throttled node:
// min(beta + alpha/IPF, gamma) (Equation 2).
func (p Params) ThrottleRate(ipf float64) float64 {
	return math.Min(p.BetaThrot+p.AlphaThrot/ipf, p.GammaThrot)
}

// Decision is the outcome of one controller epoch, for logging and
// tests.
type Decision struct {
	// Congested is true when at least one node exceeded its starvation
	// threshold, activating throttling network-wide.
	Congested bool
	// MeanIPF is the across-node average IPF used as the throttling
	// criterion.
	MeanIPF float64
	// Rates[i] is the throttling rate applied to node i this epoch.
	Rates []float64
	// ThrottledNodes counts nodes with a non-zero rate.
	ThrottledNodes int
	// ControlPackets is the coordination cost in packets: one report
	// from and one rate-setting to every node (§6.6: "only 2n packets
	// ... every 100k cycles").
	ControlPackets int
}

// Controller is Algorithm 1: the centrally-coordinated software that
// periodically turns per-node (sigma, IPF) readings into per-node
// throttling rates. The coordination is feasible on-chip because the
// topology is static and small-diameter (§2.1), and it is cheap: 2n
// control packets per epoch and a trivial computation.
type Controller struct {
	params Params
	policy *Policy

	epochs    int64
	decisions int64 // epochs with throttling active
	rates     []float64
}

// NewController wires a controller to the hardware policy it drives.
func NewController(policy *Policy, params Params) *Controller {
	if params.Epoch <= 0 {
		params.Epoch = DefaultParams().Epoch
	}
	if params.IPFCap <= 0 {
		params.IPFCap = DefaultParams().IPFCap
	}
	if params.MinSigma == 0 {
		params.MinSigma = DefaultParams().MinSigma
	}
	return &Controller{
		params: params,
		policy: policy,
		rates:  make([]float64, policy.T.Nodes()),
	}
}

// Params returns the controller's parameter set.
func (c *Controller) Params() Params { return c.params }

// Epochs returns how many times Update has run.
func (c *Controller) Epochs() int64 { return c.epochs }

// CongestedEpochs returns how many epochs activated throttling.
func (c *Controller) CongestedEpochs() int64 { return c.decisions }

// Update runs one epoch of Algorithm 1. ipf[i] is node i's measured
// instructions-per-flit over the elapsed epoch (non-positive or NaN
// values are treated as IPFCap: the node sent no traffic). It reads
// each node's starvation rate from the monitor, decides the congestion
// state, and programs the throttler.
func (c *Controller) Update(ipf []float64) Decision {
	n := c.policy.T.Nodes()
	if len(ipf) != n {
		panic("core: Update needs one IPF measurement per node")
	}
	c.epochs++

	// Sanitise IPF readings and compute the mean (the throttling
	// criterion's threshold).
	sum := 0.0
	for i := 0; i < n; i++ {
		v := ipf[i]
		if !(v > 0) || v > c.params.IPFCap || math.IsNaN(v) {
			v = c.params.IPFCap
		}
		c.rates[i] = v // reuse as scratch for sanitised IPF
		sum += v
	}
	meanIPF := sum / float64(n)

	// Determine congestion state: any node over its threshold.
	congested := false
	for i := 0; i < n; i++ {
		sigma := c.policy.M.Rate(i)
		if sigma > c.params.StarveThreshold(c.rates[i]) {
			congested = true
			break
		}
	}

	// Set throttling rates: when congested, throttle the
	// network-intensive half (IPF below average), proportionally to
	// intensity; otherwise release everyone.
	d := Decision{Congested: congested, MeanIPF: meanIPF, ControlPackets: 2 * n}
	for i := 0; i < n; i++ {
		r := 0.0
		if congested && c.rates[i] < meanIPF {
			r = c.params.ThrottleRate(c.rates[i])
		}
		c.rates[i] = r
		c.policy.T.SetRate(i, r)
		if r > 0 {
			d.ThrottledNodes++
		}
	}
	if congested {
		c.decisions++
	}
	d.Rates = c.rates
	return d
}
