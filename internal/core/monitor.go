// Package core implements the paper's primary contribution: the
// application-aware, starvation-driven source-throttling congestion
// control mechanism for bufferless NoCs (§5), together with the static
// throttling used in §3.1/Fig. 5 and the distributed "TCP-like"
// comparison controller of §6.6.
//
// The mechanism has three parts, mapped one-to-one onto the paper's
// algorithms:
//
//   - Monitor (Algorithm 2, per-node hardware): a W-cycle shift window
//     of starved bits whose running sum yields the starvation rate σ.
//   - Throttler (Algorithm 3, per-node hardware): a deterministic
//     injection gate that blocks a configured fraction of injection
//     opportunities.
//   - Controller (Algorithm 1, software, centrally coordinated): every
//     T cycles it collects each node's σ and IPF (instructions per
//     flit), decides whether the network is congested, and sets each
//     node's throttling rate — only nodes with below-average IPF (the
//     network-intensive applications) are throttled, and harder the
//     more intensive they are.
package core

import "math/bits"

// DefaultWindow is W, the starvation-rate window in cycles (§6.1).
const DefaultWindow = 128

// Monitor is the per-node starvation-rate instrument of Algorithm 2:
// sigma[i] = (1/W) * sum over the last W cycles of starved(i).
//
// Hardware cost (§6.5): a W-bit shift register and an up-down counter
// per node. With W=128 that is 128 bits of storage; together with the
// Throttler's 7-bit free-running counter and 14-bit rate register this
// is the paper's "149 bits, two counters and a comparator".
//
// Tick must be called once per node per cycle. Distinct nodes may be
// ticked concurrently.
type Monitor struct {
	window int
	words  int // 64-bit words per node
	bits   []uint64
	sums   []int32
	pos    []int32
}

// NewMonitor creates a Monitor for n nodes with the given window size
// (0 means DefaultWindow). Window must be a multiple of 64.
func NewMonitor(n, window int) *Monitor {
	if window == 0 {
		window = DefaultWindow
	}
	if window <= 0 || window%64 != 0 {
		panic("core: monitor window must be a positive multiple of 64")
	}
	words := window / 64
	return &Monitor{
		window: window,
		words:  words,
		bits:   make([]uint64, n*words),
		sums:   make([]int32, n),
		pos:    make([]int32, n),
	}
}

// Window returns W.
func (m *Monitor) Window() int { return m.window }

// Nodes returns the node count.
func (m *Monitor) Nodes() int { return len(m.sums) }

// Tick records whether node was starved this cycle (wanted to inject
// but could not), aging out the bit from W cycles ago.
func (m *Monitor) Tick(node int, starved bool) {
	p := int(m.pos[node])
	word := node*m.words + p/64
	mask := uint64(1) << uint(p%64)
	if m.bits[word]&mask != 0 {
		m.bits[word] &^= mask
		m.sums[node]--
	}
	if starved {
		m.bits[word] |= mask
		m.sums[node]++
	}
	p++
	if p == m.window {
		p = 0
	}
	m.pos[node] = int32(p)
}

// TickIdle advances node's window by k consecutive not-starved cycles
// in one call, producing exactly the state k individual
// Tick(node, false) calls would: the k positions starting at the
// write cursor are cleared (adjusting the running sum by their old
// bits) and the cursor advances k mod W. Active-set fabrics use it to
// fast-forward nodes they skipped while idle; a skipped node is by
// definition one with nothing to inject, i.e. not starved.
func (m *Monitor) TickIdle(node int, k int64) {
	if k <= 0 {
		return
	}
	base := node * m.words
	if k >= int64(m.window) {
		// Every window bit is overwritten by a zero; only the cursor's
		// final phase survives.
		for w := 0; w < m.words; w++ {
			m.bits[base+w] = 0
		}
		m.sums[node] = 0
		m.pos[node] = int32((int64(m.pos[node]) + k) % int64(m.window))
		return
	}
	p := int(m.pos[node])
	n := int(k)
	for n > 0 {
		word := base + p/64
		off := p % 64
		span := 64 - off
		if span > n {
			span = n
		}
		mask := ^uint64(0)
		if span < 64 {
			mask = ((uint64(1) << uint(span)) - 1) << uint(off)
		}
		if cleared := m.bits[word] & mask; cleared != 0 {
			m.sums[node] -= int32(bits.OnesCount64(cleared))
			m.bits[word] &^= mask
		}
		p += span
		if p == m.window {
			p = 0
		}
		n -= span
	}
	m.pos[node] = int32(p)
}

// Rate returns node's current starvation rate sigma in [0,1].
func (m *Monitor) Rate(node int) float64 {
	return float64(m.sums[node]) / float64(m.window)
}

// Rates appends all nodes' starvation rates to buf and returns it.
func (m *Monitor) Rates(buf []float64) []float64 {
	for i := range m.sums {
		buf = append(buf, m.Rate(i))
	}
	return buf
}

// Reset clears all windows.
func (m *Monitor) Reset() {
	for i := range m.bits {
		m.bits[i] = 0
	}
	for i := range m.sums {
		m.sums[i] = 0
		m.pos[i] = 0
	}
}

// HardwareBitsPerNode is the per-node storage cost of the full
// mechanism as itemised in §6.5: the W-bit starvation window (W=128),
// the 7-bit free-running injection counter, and a 14-bit throttling-rate
// register — 149 bits, two counters, and one comparator.
const HardwareBitsPerNode = DefaultWindow + 7 + 14
