package core_test

import (
	"fmt"

	"nocsim/internal/core"
)

// The full mechanism in miniature: hardware instruments feed the
// central controller, which programs per-node throttling rates.
func Example() {
	const nodes = 4
	policy := core.NewPolicy(nodes, 128)

	// Hardware side, each cycle: the fabric reports injection outcomes.
	// Node 0 (a heavy application) is starved half the time.
	for cycle := 0; cycle < 128; cycle++ {
		policy.Tick(0, true, cycle%2 == 0, false)
		for n := 1; n < nodes; n++ {
			policy.Tick(n, false, false, false)
		}
	}

	// Software side, each epoch: collect IPF, decide, program rates.
	ctl := core.NewController(policy, core.DefaultParams())
	ipf := []float64{1.0, 2.0, 500, 800} // node 0/1 intensive, 2/3 light
	d := ctl.Update(ipf)

	fmt.Printf("congested: %v\n", d.Congested)
	fmt.Printf("node 0 rate: %.2f\n", d.Rates[0])
	fmt.Printf("node 3 rate: %.2f\n", d.Rates[3])
	// Output:
	// congested: true
	// node 0 rate: 0.75
	// node 3 rate: 0.00
}

// Equation 1: the congestion-detection threshold scales with an
// application's network intensity.
func ExampleParams_StarveThreshold() {
	p := core.DefaultParams()
	fmt.Printf("IPF 1 (mcf-like):    %.3f\n", p.StarveThreshold(1))
	fmt.Printf("IPF 0.4 (capped):    %.3f\n", p.StarveThreshold(0.4))
	// Output:
	// IPF 1 (mcf-like):    0.400
	// IPF 0.4 (capped):    0.700
}

// Equation 2: more intensive applications are throttled harder, capped
// so they are never fully starved.
func ExampleParams_ThrottleRate() {
	p := core.DefaultParams()
	fmt.Printf("IPF 1:   %.2f\n", p.ThrottleRate(1))
	fmt.Printf("IPF 9:   %.2f\n", p.ThrottleRate(9))
	// Output:
	// IPF 1:   0.75
	// IPF 9:   0.30
}

// Algorithm 3's deterministic gate blocks exactly the configured
// fraction of injection opportunities.
func ExampleThrottler() {
	t := core.NewThrottler(1)
	t.SetRate(0, 0.25)
	blocked := 0
	for i := 0; i < core.MaxCount; i++ {
		if !t.Allow(0) {
			blocked++
		}
	}
	fmt.Printf("blocked %d of %d opportunities\n", blocked, core.MaxCount)
	// Output:
	// blocked 32 of 128 opportunities
}
