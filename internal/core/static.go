package core

// Static is the homogeneous/static throttling policy used in the
// motivation experiments: §3.1's uniform static-throttling sweep
// (Fig. 2(c)) and §4's selective 90% throttling of individual
// applications (Fig. 5). Rates are set once (or whenever the experiment
// wants) and are not driven by any feedback loop. The attached Monitor
// still records starvation so the experiments can report it.
type Static struct {
	M *Monitor
	T *Throttler
}

// NewStatic builds a static policy for n nodes with all rates zero.
func NewStatic(n int) *Static {
	return &Static{M: NewMonitor(n, 0), T: NewThrottler(n)}
}

// SetAll applies one throttling rate to every node.
func (s *Static) SetAll(rate float64) {
	for i := 0; i < s.T.Nodes(); i++ {
		s.T.SetRate(i, rate)
	}
}

// SetNode applies a throttling rate to one node.
func (s *Static) SetNode(node int, rate float64) { s.T.SetRate(node, rate) }

// Allow consults the deterministic gate.
func (s *Static) Allow(node int) bool { return s.T.Allow(node) }

// Tick feeds the starvation window (network-refused cycles only).
func (s *Static) Tick(node int, wanted, injected, throttled bool) {
	s.M.Tick(node, wanted && !injected && !throttled)
}

// TickIdle fast-forwards the starvation window over fabric-skipped
// idle cycles (noc.IdleTicker).
func (s *Static) TickIdle(node int, cycles int64) { s.M.TickIdle(node, cycles) }

// MarkCongested is always false: static throttling has no signalling.
func (s *Static) MarkCongested(int) bool { return false }
