package core

import (
	"math"
	"testing"
	"testing/quick"

	"nocsim/internal/rng"
)

func TestMonitorWindowExact(t *testing.T) {
	m := NewMonitor(1, 128)
	// 32 starved cycles then 96 clean: sigma = 32/128.
	for i := 0; i < 32; i++ {
		m.Tick(0, true)
	}
	for i := 0; i < 96; i++ {
		m.Tick(0, false)
	}
	if got := m.Rate(0); got != 0.25 {
		t.Errorf("sigma = %v, want 0.25", got)
	}
	// 128 more clean cycles age everything out.
	for i := 0; i < 128; i++ {
		m.Tick(0, false)
	}
	if got := m.Rate(0); got != 0 {
		t.Errorf("sigma after aging = %v, want 0", got)
	}
}

func TestMonitorAllStarved(t *testing.T) {
	m := NewMonitor(2, 128)
	for i := 0; i < 500; i++ {
		m.Tick(1, true)
	}
	if got := m.Rate(1); got != 1 {
		t.Errorf("sigma = %v, want 1", got)
	}
	if got := m.Rate(0); got != 0 {
		t.Errorf("untouched node sigma = %v, want 0", got)
	}
}

// Property: the monitor's running sum always equals a brute-force count
// over the last W ticks.
func TestMonitorMatchesBruteForce(t *testing.T) {
	const W = 128
	m := NewMonitor(1, W)
	r := rng.New(3)
	var history []bool
	for i := 0; i < 2000; i++ {
		s := r.Bool(0.3)
		m.Tick(0, s)
		history = append(history, s)
		count := 0
		lo := len(history) - W
		if lo < 0 {
			lo = 0
		}
		for _, h := range history[lo:] {
			if h {
				count++
			}
		}
		if got := m.Rate(0); got != float64(count)/W {
			t.Fatalf("tick %d: sigma %v, brute force %v", i, got, float64(count)/W)
		}
	}
}

func TestMonitorReset(t *testing.T) {
	m := NewMonitor(1, 64)
	for i := 0; i < 10; i++ {
		m.Tick(0, true)
	}
	m.Reset()
	if m.Rate(0) != 0 {
		t.Error("Reset did not clear the window")
	}
}

func TestMonitorPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("window 100 (not multiple of 64) did not panic")
		}
	}()
	NewMonitor(1, 100)
}

func TestHardwareCostMatchesPaper(t *testing.T) {
	// §6.5: "only 149 bits of storage, two counters, and one comparator".
	if HardwareBitsPerNode != 149 {
		t.Errorf("hardware cost %d bits, paper says 149", HardwareBitsPerNode)
	}
}

func TestThrottlerRateExact(t *testing.T) {
	for _, rate := range []float64{0, 0.25, 0.5, 0.75, 1} {
		th := NewThrottler(1)
		th.SetRate(0, rate)
		allowed := 0
		const trials = MaxCount * 100
		for i := 0; i < trials; i++ {
			if th.Allow(0) {
				allowed++
			}
		}
		got := 1 - float64(allowed)/trials
		if math.Abs(got-rate) > 0.01 {
			t.Errorf("rate %v: blocked fraction %v", rate, got)
		}
	}
}

func TestThrottlerDeterministicPattern(t *testing.T) {
	// Rate 0.5: exactly half of each 128-opportunity period is blocked,
	// deterministically (no burstiness beyond one period).
	th := NewThrottler(1)
	th.SetRate(0, 0.5)
	blockedInPeriod := 0
	for i := 0; i < MaxCount; i++ {
		if !th.Allow(0) {
			blockedInPeriod++
		}
	}
	if blockedInPeriod != MaxCount/2 {
		t.Errorf("blocked %d of %d in one period, want exactly half", blockedInPeriod, MaxCount)
	}
}

func TestThrottlerClampsRate(t *testing.T) {
	th := NewThrottler(1)
	th.SetRate(0, 1.7)
	if th.Rate(0) != 1 {
		t.Errorf("rate clamped to %v, want 1", th.Rate(0))
	}
	th.SetRate(0, -0.3)
	if th.Rate(0) != 0 {
		t.Errorf("rate clamped to %v, want 0", th.Rate(0))
	}
}

func TestThrottlerFullRateBlocksAlmostAll(t *testing.T) {
	th := NewThrottler(1)
	th.SetRate(0, 1)
	allowed := 0
	for i := 0; i < MaxCount*10; i++ {
		if th.Allow(0) {
			allowed++
		}
	}
	// Counter value 0 (1 in 128) passes the >= comparison by wraparound.
	if allowed > 10 {
		t.Errorf("rate 1 allowed %d injections", allowed)
	}
}

func TestPolicyTickSemantics(t *testing.T) {
	p := NewPolicy(1, 128)
	// wanted && !injected && !throttled is starved.
	p.Tick(0, true, false, false)
	// injected, idle, and throttle-blocked cycles are not starved.
	p.Tick(0, true, true, false)
	p.Tick(0, false, false, false)
	p.Tick(0, true, false, true)
	if got := p.M.Rate(0); got != 1.0/128 {
		t.Errorf("sigma = %v, want 1/128", got)
	}
	if p.MarkCongested(0) {
		t.Error("central policy must never mark congestion bits")
	}
}

func TestParamsEquations(t *testing.T) {
	p := DefaultParams()
	// Equation 1 at the paper's constants.
	if got := p.StarveThreshold(1.0); got != 0.4 {
		t.Errorf("starve threshold for IPF=1: %v, want 0.4 (0.0 + 0.4/1)", got)
	}
	if got := p.StarveThreshold(0.4); got != 0.7 {
		t.Errorf("starve threshold for IPF=0.4: %v, want gamma cap 0.7", got)
	}
	// Equation 2.
	if got := p.ThrottleRate(1.0); got != 0.75 {
		t.Errorf("throttle rate for IPF=1: %v, want gamma cap 0.75", got)
	}
	if got := p.ThrottleRate(9.0); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("throttle rate for IPF=9: %v, want 0.2+0.9/9=0.3", got)
	}
	if got := p.ThrottleRate(1e6); math.Abs(got-0.2) > 1e-3 {
		t.Errorf("throttle rate for huge IPF: %v, want ~beta 0.2", got)
	}
}

// starve drives node's monitor to a given sigma.
func starve(p *Policy, node int, sigma float64) {
	w := p.M.Window()
	k := int(sigma * float64(w))
	for i := 0; i < w-k; i++ {
		p.M.Tick(node, false)
	}
	for i := 0; i < k; i++ {
		p.M.Tick(node, true)
	}
}

func TestControllerThrottlesIntensiveOnly(t *testing.T) {
	p := NewPolicy(4, 128)
	c := NewController(p, DefaultParams())
	// Node 0: intensive (IPF 1) and starving badly. Nodes 2,3: light.
	starve(p, 0, 0.6)
	d := c.Update([]float64{1, 2, 500, 800})
	if !d.Congested {
		t.Fatal("sigma 0.6 > threshold 0.4 must flag congestion")
	}
	// Mean IPF ~ 325.75: nodes 0,1 below, 2,3 above.
	if d.Rates[0] == 0 || d.Rates[1] == 0 {
		t.Error("network-intensive nodes must be throttled")
	}
	if d.Rates[2] != 0 || d.Rates[3] != 0 {
		t.Error("light nodes must not be throttled")
	}
	if d.ThrottledNodes != 2 {
		t.Errorf("throttled %d nodes, want 2", d.ThrottledNodes)
	}
	// More intensive => throttled harder.
	if d.Rates[0] < d.Rates[1] {
		t.Errorf("IPF 1 rate %v should be >= IPF 2 rate %v", d.Rates[0], d.Rates[1])
	}
	// Rates actually programmed into the hardware gate.
	if p.T.Rate(0) != d.Rates[0] {
		t.Error("controller did not program the throttler")
	}
}

func TestControllerReleasesWhenCalm(t *testing.T) {
	p := NewPolicy(2, 128)
	c := NewController(p, DefaultParams())
	starve(p, 0, 0.6)
	c.Update([]float64{1, 100})
	if p.T.Rate(0) == 0 {
		t.Fatal("setup: node 0 should be throttled")
	}
	// Clear starvation: next epoch must release.
	starve(p, 0, 0)
	d := c.Update([]float64{1, 100})
	if d.Congested {
		t.Error("no starvation must mean no congestion")
	}
	if p.T.Rate(0) != 0 {
		t.Error("rates must be released when congestion clears")
	}
}

func TestControllerIntensityScaledDetection(t *testing.T) {
	// A network-intensive node (IPF 1) naturally starves more: its
	// detection threshold is 0.4. A light node (IPF 100) has threshold
	// ~0.004. The same sigma=0.2 trips detection only via the light node.
	p := NewPolicy(2, 128)
	c := NewController(p, DefaultParams())
	starve(p, 0, 0.2) // intensive node: below its 0.4 threshold
	d := c.Update([]float64{1, 1000})
	if d.Congested {
		t.Error("intensive node at sigma 0.2 must not trip its scaled threshold")
	}
	starve(p, 1, 0.2) // light node: far above its ~0 threshold
	d = c.Update([]float64{1, 1000})
	if !d.Congested {
		t.Error("light node at sigma 0.2 must trip detection")
	}
}

func TestControllerSanitisesIPF(t *testing.T) {
	p := NewPolicy(3, 128)
	c := NewController(p, DefaultParams())
	starve(p, 0, 0.7)
	d := c.Update([]float64{1, 0, math.NaN()})
	// Zero/NaN become IPFCap: only node 0 is below the mean.
	if d.Rates[1] != 0 || d.Rates[2] != 0 {
		t.Error("nodes with no traffic must never be throttled")
	}
	if d.Rates[0] == 0 {
		t.Error("the one intensive node must be throttled")
	}
}

func TestControllerControlPacketCost(t *testing.T) {
	p := NewPolicy(16, 128)
	c := NewController(p, DefaultParams())
	d := c.Update(make([]float64, 16))
	if d.ControlPackets != 32 {
		t.Errorf("control packets = %d, want 2n = 32 (§6.6)", d.ControlPackets)
	}
}

func TestControllerPanicsOnSizeMismatch(t *testing.T) {
	p := NewPolicy(4, 128)
	c := NewController(p, DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	c.Update([]float64{1, 2})
}

func TestStaticPolicy(t *testing.T) {
	s := NewStatic(4)
	s.SetAll(0.9)
	s.SetNode(2, 0)
	blocked := 0
	for i := 0; i < MaxCount; i++ {
		if !s.Allow(0) {
			blocked++
		}
		if !s.Allow(2) {
			t.Fatal("unthrottled node blocked")
		}
	}
	if got := float64(blocked) / MaxCount; math.Abs(got-0.9) > 0.01 {
		t.Errorf("node 0 blocked fraction %v, want 0.9", got)
	}
	s.Tick(0, true, false, false)
	if s.M.Rate(0) == 0 {
		t.Error("static policy must still record starvation")
	}
}

func TestDistributedBackoffAndDecay(t *testing.T) {
	d := NewDistributed(2)
	// A signal raises the rate at the next epoch.
	d.OnSignal(0)
	d.Epoch()
	r1 := d.Rate(0)
	if r1 != 0.2 {
		t.Errorf("first backoff rate %v, want Step 0.2", r1)
	}
	d.OnSignal(0)
	d.Epoch()
	r2 := d.Rate(0)
	if r2 <= r1 {
		t.Error("repeated signals must increase the rate multiplicatively")
	}
	// Silence decays.
	d.Epoch()
	if d.Rate(0) >= r2 {
		t.Error("rate must decay without signals")
	}
	for i := 0; i < 20; i++ {
		d.Epoch()
	}
	if d.Rate(0) != 0 {
		t.Errorf("rate must decay to zero, got %v", d.Rate(0))
	}
	if d.Rate(1) != 0 {
		t.Error("unsignalled node must stay unthrottled")
	}
}

func TestDistributedRateCapped(t *testing.T) {
	d := NewDistributed(1)
	for i := 0; i < 50; i++ {
		d.OnSignal(0)
		d.Epoch()
	}
	if d.Rate(0) > d.MaxRate {
		t.Errorf("rate %v exceeds cap %v", d.Rate(0), d.MaxRate)
	}
	if d.Signals() != 50 {
		t.Errorf("signal count %d, want 50", d.Signals())
	}
}

func TestDistributedMarksWhenStarving(t *testing.T) {
	d := NewDistributed(1)
	if d.MarkCongested(0) {
		t.Error("fresh node must not mark")
	}
	for i := 0; i < 128; i++ {
		d.Tick(0, true, false, false)
	}
	if !d.MarkCongested(0) {
		t.Error("fully starved node must mark passing traffic")
	}
}

func TestUnawareThrottlesEveryone(t *testing.T) {
	p := NewPolicy(4, 128)
	u := NewUnaware(p, DefaultParams(), 0.5)
	starve(p, 0, 0.7)
	d := u.Update([]float64{1, 2, 500, 800})
	if !d.Congested || d.ThrottledNodes != 4 {
		t.Errorf("unaware controller: congested=%v throttled=%d, want true/4", d.Congested, d.ThrottledNodes)
	}
	for i := 0; i < 4; i++ {
		if p.T.Rate(i) != 0.5 {
			t.Errorf("node %d rate %v, want homogeneous 0.5", i, p.T.Rate(i))
		}
	}
}

func TestLatencyTriggeredUsesLatencySignal(t *testing.T) {
	p := NewPolicy(2, 128)
	l := NewLatencyTriggered(p, DefaultParams(), 30)
	starve(p, 0, 0.7) // starvation alone must not trigger it
	d := l.Update(10, []float64{1, 100})
	if d.Congested {
		t.Error("latency below threshold must not trigger")
	}
	d = l.Update(50, []float64{1, 100})
	if !d.Congested || d.Rates[0] == 0 || d.Rates[1] != 0 {
		t.Errorf("latency above threshold must throttle the intensive node: %+v", d)
	}
}

// Property: throttler long-run block fraction equals the set rate for
// arbitrary rates.
func TestThrottlerRateProperty(t *testing.T) {
	f := func(raw uint8) bool {
		rate := float64(raw%129) / 128
		th := NewThrottler(1)
		th.SetRate(0, rate)
		blocked := 0
		for i := 0; i < MaxCount*64; i++ {
			if !th.Allow(0) {
				blocked++
			}
		}
		got := float64(blocked) / float64(MaxCount*64)
		return math.Abs(got-rate) <= 1.0/MaxCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMonitorTick(b *testing.B) {
	m := NewMonitor(64, 128)
	for i := 0; i < b.N; i++ {
		m.Tick(i&63, i&7 == 0)
	}
}

func BenchmarkThrottlerAllow(b *testing.B) {
	th := NewThrottler(64)
	th.SetRate(0, 0.5)
	for i := 0; i < b.N; i++ {
		th.Allow(i & 63)
	}
}

func BenchmarkControllerUpdate(b *testing.B) {
	p := NewPolicy(4096, 128)
	c := NewController(p, DefaultParams())
	ipf := make([]float64, 4096)
	for i := range ipf {
		ipf[i] = float64(i%100) + 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Update(ipf)
	}
}

func TestMinSigmaFloorsDetection(t *testing.T) {
	p := NewPolicy(2, 128)
	c := NewController(p, DefaultParams())
	// A light app (IPF 1000) starved exactly once in the window: below
	// the 1.5/128 floor, so no congestion despite threshold 0.0004.
	starve(p, 1, 1.0/128)
	d := c.Update([]float64{1, 1000})
	if d.Congested {
		t.Error("one starved cycle (measurement noise) must not flag congestion")
	}
	// Two starved cycles clear the floor.
	starve(p, 1, 2.0/128)
	d = c.Update([]float64{1, 1000})
	if !d.Congested {
		t.Error("two starved cycles at a light app must flag congestion")
	}
}
