package core

// Distributed is the §6.6 comparison controller, a "TCP-like" congestion
// response with no application awareness and no central coordination:
//
//  1. a node whose own starvation rate exceeds SigmaThresh sets a
//     "congested" bit on every packet that passes through its router;
//  2. a node that receives a packet with the congested bit set
//     self-throttles, backing off multiplicatively; absent further
//     signals its rate decays additively each local epoch.
//
// The paper found this mechanism far less effective than the central,
// IPF-aware controller because it throttles whoever happens to see a
// marked packet rather than the applications that cause congestion.
// The backoff constants are not specified in the paper; the defaults
// here are a conventional AIMD setting and are swept in the benchmarks.
type Distributed struct {
	M *Monitor
	T *Throttler

	// SigmaThresh is the local starvation rate above which a node marks
	// passing traffic.
	SigmaThresh float64
	// Increase is the multiplicative backoff: on a congestion signal,
	// rate <- min(MaxRate, rate*Increase + Step).
	Increase float64
	// Step seeds the backoff from zero.
	Step float64
	// Decay is subtracted from the rate each local epoch without a
	// signal.
	Decay float64
	// MaxRate caps the self-imposed throttling rate.
	MaxRate float64

	rates    []float64
	signaled []bool
	signals  int64
}

// NewDistributed builds the distributed policy for n nodes with the
// default constants (threshold 0.35, backoff *1.5+0.2 capped at 0.75,
// decay 0.1).
func NewDistributed(n int) *Distributed {
	return &Distributed{
		M:           NewMonitor(n, 0),
		T:           NewThrottler(n),
		SigmaThresh: 0.35,
		Increase:    1.5,
		Step:        0.2,
		Decay:       0.1,
		MaxRate:     0.75,
		rates:       make([]float64, n),
		signaled:    make([]bool, n),
	}
}

// Allow consults the deterministic gate.
func (d *Distributed) Allow(node int) bool { return d.T.Allow(node) }

// Tick feeds the starvation window (network-refused cycles only).
func (d *Distributed) Tick(node int, wanted, injected, throttled bool) {
	d.M.Tick(node, wanted && !injected && !throttled)
}

// TickIdle fast-forwards the starvation window over fabric-skipped
// idle cycles (noc.IdleTicker).
func (d *Distributed) TickIdle(node int, cycles int64) { d.M.TickIdle(node, cycles) }

// MarkCongested reports whether node is currently starving past the
// threshold; the fabric then sets the congestion bit on departing flits.
func (d *Distributed) MarkCongested(node int) bool {
	return d.M.Rate(node) > d.SigmaThresh
}

// OnSignal is called by the system when node receives a packet whose
// congestion bit is set. The response is applied at the next Epoch call
// (one reaction per local epoch, like one backoff per RTT).
func (d *Distributed) OnSignal(node int) {
	d.signaled[node] = true
	d.signals++
}

// Signals returns the number of congestion signals received so far.
func (d *Distributed) Signals() int64 { return d.signals }

// Rate returns node's current self-imposed throttling rate.
func (d *Distributed) Rate(node int) float64 { return d.rates[node] }

// Epoch applies each node's pending backoff or decay and programs the
// throttler. Call it periodically (the experiments use the same 100k
// cycle period as the central controller's epoch).
func (d *Distributed) Epoch() {
	for i := range d.rates {
		if d.signaled[i] {
			d.rates[i] = d.rates[i]*d.Increase + d.Step
			if d.rates[i] > d.MaxRate {
				d.rates[i] = d.MaxRate
			}
			d.signaled[i] = false
		} else {
			d.rates[i] -= d.Decay
			if d.rates[i] < 0 {
				d.rates[i] = 0
			}
		}
		d.T.SetRate(i, d.rates[i])
	}
}
